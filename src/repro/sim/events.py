"""A miniature generator-based discrete-event simulator.

Processes are plain Python generators.  Each ``yield`` hands the simulator
an *effect*; the simulator resumes the generator (optionally sending a
value) when the effect completes:

- ``yield Timeout(dt)`` — resume after ``dt`` simulated seconds;
- ``yield Request(resource)`` — resume once a capacity slot is granted
  (release with ``resource.release()``);
- ``yield Put(store, item)`` — resume once the bounded store accepts the
  item (this is how a full parser buffer back-pressures its parser);
- ``yield Get(store)`` — resume with the next item in FIFO order.

The loop is deterministic: events fire in (time, sequence) order, so two
runs of the same pipeline give identical timelines — a property the
hypothesis tests lean on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Generator, Iterator

__all__ = ["Simulator", "Process", "Timeout", "Request", "Put", "Get"]


@dataclass(frozen=True)
class Timeout:
    """Sleep for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout {self.delay}")


@dataclass(frozen=True)
class Request:
    """Acquire one capacity slot of a resource (FIFO)."""

    resource: Any  # repro.sim.resources.Resource


@dataclass(frozen=True)
class Put:
    """Offer ``item`` to a bounded store; blocks while full."""

    store: Any  # repro.sim.resources.Store
    item: Any


@dataclass(frozen=True)
class Get:
    """Take the oldest item from a store; blocks while empty."""

    store: Any


@dataclass
class Process:
    """A running generator with liveness bookkeeping."""

    pid: int
    name: str
    generator: Generator
    finished: bool = False
    finish_time: float | None = None
    result: Any = None


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._trace: list[tuple[float, str, str]] = []
        self.trace_enabled = False

    # ------------------------------------------------------------------ #
    # Process management
    # ------------------------------------------------------------------ #

    def add_process(self, generator: Iterator, name: str = "proc") -> Process:
        """Register a generator as a process starting at the current time."""
        proc = Process(pid=len(self._processes), name=name, generator=generator)
        self._processes.append(proc)
        self._push(self.now, proc, None)
        return proc

    def _push(self, when: float, proc: Process, send_value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, send_value))

    def _log(self, proc: Process, what: str) -> None:
        if self.trace_enabled:
            self._trace.append((self.now, proc.name, what))

    @property
    def trace(self) -> list[tuple[float, str, str]]:
        return list(self._trace)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or ``until``); returns the final sim time.

        Raises :class:`RuntimeError` on deadlock — live processes waiting
        on effects nobody will complete (e.g. a Get on a store no producer
        ever fills).  Pipeline bugs surface here instead of hanging.
        """
        while self._heap:
            when, _, proc, send_value = heapq.heappop(self._heap)
            if until is not None and when > until:
                # Put the event back and stop at the horizon.
                self._push(when, proc, send_value)
                self.now = until
                return self.now
            self.now = when
            self._step(proc, send_value)
        blocked = [p for p in self._processes if not p.finished and p.pid in self._parked]
        if blocked:
            names = ", ".join(p.name for p in blocked)
            raise RuntimeError(f"deadlock: processes blocked forever: {names}")
        return self.now

    # ------------------------------------------------------------------ #
    # Effect dispatch
    # ------------------------------------------------------------------ #

    @property
    def _parked(self) -> set[int]:
        parked = getattr(self, "_parked_set", None)
        if parked is None:
            parked = set()
            self._parked_set = parked
        return parked

    def _step(self, proc: Process, send_value: Any) -> None:
        self._parked.discard(proc.pid)
        try:
            effect = proc.generator.send(send_value)
        except StopIteration as stop:
            proc.finished = True
            proc.finish_time = self.now
            proc.result = stop.value
            self._log(proc, "finished")
            return
        if isinstance(effect, Timeout):
            self._log(proc, f"timeout {effect.delay:.6f}")
            self._push(self.now + effect.delay, proc, None)
        elif isinstance(effect, Request):
            self._log(proc, f"request {effect.resource.name}")
            granted_now = effect.resource._request(self, proc)
            if granted_now:
                self._push(self.now, proc, None)
            else:
                self._parked.add(proc.pid)
        elif isinstance(effect, Put):
            self._log(proc, f"put -> {effect.store.name}")
            accepted_now = effect.store._put(self, proc, effect.item)
            if not accepted_now:
                self._parked.add(proc.pid)
        elif isinstance(effect, Get):
            self._log(proc, f"get <- {effect.store.name}")
            got_now = effect.store._get(self, proc)
            if not got_now:
                self._parked.add(proc.pid)
        else:
            raise TypeError(
                f"process {proc.name} yielded {effect!r}; expected Timeout, "
                "Request, Put or Get"
            )

    # Called by resources/stores when a parked process can continue.
    def _resume(self, proc: Process, send_value: Any = None) -> None:
        self._parked.discard(proc.pid)
        self._push(self.now, proc, send_value)
