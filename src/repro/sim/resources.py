"""Resources and bounded stores for the pipeline simulation.

- :class:`Resource` models exclusive or limited hardware: the single disk
  whose reads the paper's scheduler serializes ("a scheduler is used to
  organize the reads of the different parsers, one at a time"), and the
  PCIe bus that serializes pre/post-processing transfers.
- :class:`Store` models parser output buffers: bounded FIFO queues where a
  full buffer back-pressures its parser and an empty one makes the
  indexing stage wait (those waits are the "gap" rows of Table IV).

Both keep utilization accounting so reports can show disk busy time,
per-resource queue delays, and buffer occupancy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.sim.events import Process, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO capacity resource (``capacity=1`` → mutex, e.g. the disk)."""

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Process] = deque()
        self._sim: Simulator | None = None
        # Accounting.
        self.total_wait_s = 0.0
        self.grants = 0
        self._wait_started: dict[int, float] = {}
        self.busy_s = 0.0
        self._grant_time: dict[int, float] = {}

    # Called by the simulator on `yield Request(resource)`.
    def _request(self, sim: Simulator, proc: Process) -> bool:
        self._sim = sim
        if self.in_use < self.capacity:
            self._grant(sim, proc)
            return True
        self._waiters.append(proc)
        self._wait_started[proc.pid] = sim.now
        return False

    def _grant(self, sim: Simulator, proc: Process) -> None:
        self.in_use += 1
        self.grants += 1
        self._grant_time[proc.pid] = sim.now
        waited_since = self._wait_started.pop(proc.pid, None)
        if waited_since is not None:
            self.total_wait_s += sim.now - waited_since

    def release(self, proc: Process | None = None) -> None:
        """Release one slot (call from the owning process's code)."""
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name}")
        self.in_use -= 1
        if proc is not None:
            start = self._grant_time.pop(proc.pid, None)
            if start is not None and self._sim is not None:
                self.busy_s += self._sim.now - start
        if self._waiters and self._sim is not None:
            nxt = self._waiters.popleft()
            self._grant(self._sim, nxt)
            self._sim._resume(nxt)


@dataclass
class Store:
    """A bounded FIFO store (parser output buffer)."""

    name: str
    capacity: int = 2
    items: deque = field(default_factory=deque)
    _put_waiters: deque = field(default_factory=deque)  # (proc, item)
    _get_waiters: deque = field(default_factory=deque)
    puts: int = 0
    gets: int = 0
    producer_blocked_s: float = 0.0
    consumer_blocked_s: float = 0.0
    _blocked_since: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {self.capacity}")

    # Called by the simulator on `yield Put(store, item)`.
    def _put(self, sim: Simulator, proc: Process, item: Any) -> bool:
        if self._get_waiters:
            # Hand the item straight to a waiting consumer.
            consumer = self._get_waiters.popleft()
            since = self._blocked_since.pop(("get", consumer.pid), None)
            if since is not None:
                self.consumer_blocked_s += sim.now - since
            self.puts += 1
            self.gets += 1
            sim._resume(consumer, item)
            sim._resume(proc, None)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            self.puts += 1
            sim._resume(proc, None)
            return True
        self._put_waiters.append((proc, item))
        self._blocked_since[("put", proc.pid)] = sim.now
        return False

    # Called by the simulator on `yield Get(store)`.
    def _get(self, sim: Simulator, proc: Process) -> bool:
        if self.items:
            item = self.items.popleft()
            self.gets += 1
            self._drain_put_waiters(sim)
            sim._resume(proc, item)
            return True
        self._get_waiters.append(proc)
        self._blocked_since[("get", proc.pid)] = sim.now
        return False

    def _drain_put_waiters(self, sim: Simulator) -> None:
        while self._put_waiters and len(self.items) < self.capacity:
            producer, item = self._put_waiters.popleft()
            since = self._blocked_since.pop(("put", producer.pid), None)
            if since is not None:
                self.producer_blocked_s += sim.now - since
            self.items.append(item)
            self.puts += 1
            sim._resume(producer, None)

    def __len__(self) -> int:
        return len(self.items)
