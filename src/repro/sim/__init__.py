"""Discrete-event simulation of the pipeline (the threading substitute).

The paper's throughput numbers come from eight real cores and two real
GPUs running concurrently; CPython threads cannot reproduce that, so the
pipeline's *timing* runs on a small discrete-event simulator while the
*work* is executed functionally (see DESIGN.md §5).

- :mod:`repro.sim.events` — the event loop: processes are generators that
  yield :class:`Timeout`, resource :class:`Request` or buffer
  :class:`Put`/:class:`Get` effects (a dependency-free miniature of the
  SimPy model).
- :mod:`repro.sim.resources` — capacity resources (CPU cores, the
  single-reader disk token, PCIe) and bounded FIFO stores (parser output
  buffers).
"""

from repro.sim.events import Get, Process, Put, Request, Simulator, Timeout
from repro.sim.resources import Resource, Store

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Request",
    "Put",
    "Get",
    "Resource",
    "Store",
]
