"""Term-string heap with the Fig 6 layout.

Term strings do not fit in fixed-size B-tree nodes, so nodes hold integer
*pointers* into this heap.  Following Fig 6 of the paper, each string is
stored as::

    [ length (1 byte) | payload bytes ... ]

with the length in the first byte, which bounds terms to 255 bytes ("without
loss of generality, we also assume that no term is longer than 255 bytes").
The GPU indexer reads this heap in contiguous 512-byte chunks into shared
memory (see :mod:`repro.gpusim`), so the store also exposes chunked views.

Pointers are byte offsets, which keeps the functional model identical to the
device-memory representation the CUDA kernels use.
"""

from __future__ import annotations

from typing import Iterator

from repro.dictionary.layout import DEVICE_CHUNK_BYTES, MAX_TERM_BYTES

__all__ = ["StringStore", "MAX_TERM_BYTES"]


class StringStore:
    """Append-only heap of length-prefixed byte strings."""

    __slots__ = ("_heap", "_count")

    def __init__(self) -> None:
        self._heap = bytearray()
        self._count = 0

    def add(self, payload: bytes) -> int:
        """Store ``payload`` and return its pointer (byte offset).

        Raises :class:`ValueError` for strings longer than 255 bytes, the
        paper's representational limit.
        """
        if len(payload) > MAX_TERM_BYTES:
            raise ValueError(
                f"term of {len(payload)} bytes exceeds the {MAX_TERM_BYTES}-byte "
                "limit imposed by the one-byte length prefix (Fig 6)"
            )
        ptr = len(self._heap)
        self._heap.append(len(payload))
        self._heap.extend(payload)
        self._count += 1
        return ptr

    def add_str(self, text: str) -> int:
        """Convenience: UTF-8 encode and store."""
        return self.add(text.encode("utf-8"))

    def get(self, ptr: int) -> bytes:
        """Fetch the payload bytes at ``ptr``."""
        length = self._heap[ptr]
        return bytes(self._heap[ptr + 1 : ptr + 1 + length])

    def get_str(self, ptr: int) -> str:
        """Fetch and UTF-8 decode."""
        return self.get(ptr).decode("utf-8")

    def length(self, ptr: int) -> int:
        """Length byte at ``ptr`` without copying the payload."""
        return self._heap[ptr]

    def chunks(self, chunk_bytes: int = DEVICE_CHUNK_BYTES) -> Iterator[bytes]:
        """Yield the heap in contiguous chunks (the GPU staging pattern).

        The CUDA indexer reads term strings from device memory in 512-byte
        coalesced chunks into shared memory; iterating here mirrors that
        access pattern for the simulator's cost accounting.
        """
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        view = memoryview(self._heap)
        for start in range(0, len(view), chunk_bytes):
            yield bytes(view[start : start + chunk_bytes])

    def raw_bytes(self) -> bytes:
        """The heap exactly as it would sit in device memory (Fig 6)."""
        return bytes(self._heap)

    @property
    def byte_size(self) -> int:
        """Total heap bytes (length prefixes included)."""
        return len(self._heap)

    def __len__(self) -> int:
        """Number of strings stored."""
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringStore(strings={self._count}, bytes={len(self._heap)})"
