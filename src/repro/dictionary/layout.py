"""The paper's binary-layout constants (Tables I and II), in one place.

Every hard number the reproduction's correctness hangs on lives here and
nowhere else: the 512-byte degree-16 B-tree node of Table II, the
17,613-entry trie index space of Table I, the 4-byte string caches, and
the Fig 6 string-heap limits.  Modules that need a layout value import it
from this module; re-typing one of these numbers as a literal elsewhere
in ``src/`` is a lint error (rule ``RPR001`` — see
``docs/STATIC_ANALYSIS.md``), because a silently diverging copy is
exactly the kind of defect a reviewer cannot catch by eye and the GPU
byte-format tests only catch after the fact.

This module must stay dependency-free (stdlib only): it is imported by
the dictionary, the GPU simulator, the engine configuration *and* the
lint pack's own self-checks.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_DEGREE",
    "MAX_KEYS_PER_NODE",
    "NODE_SIZE_BYTES",
    "NODE_ALIGN_BYTES",
    "POINTER_BYTES",
    "STRING_CACHE_BYTES",
    "DEVICE_CHUNK_BYTES",
    "MAX_TERM_BYTES",
    "TRIE_HEIGHT",
    "TRIE_TAIL_BASE",
    "NUM_TRIE_COLLECTIONS",
    "node_layout",
]

# ---------------------------------------------------------------------- #
# Table II — the B-tree node
# ---------------------------------------------------------------------- #

#: Paper's B-tree minimum degree ``t``: chosen so one node's 2t−1 = 31
#: keys are compared by a single 32-lane CUDA warp.
DEFAULT_DEGREE = 16

#: Keys per node at the paper degree (2t − 1 = 31).
MAX_KEYS_PER_NODE = 2 * DEFAULT_DEGREE - 1

#: Width of every node field — device pointers are 4-byte ``u32``.
POINTER_BYTES = 4

#: The per-key string cache holds the first four bytes of the term.
STRING_CACHE_BYTES = 4

#: Nodes are padded to a multiple of one coalesced 16-word line.
NODE_ALIGN_BYTES = 64

#: The coalesced-transfer granularity of the GPU staging path: B-tree
#: nodes and Fig 6 string-heap chunks both move in 512-byte streams.
DEVICE_CHUNK_BYTES = 512

#: Fig 6: a one-byte length prefix bounds terms to 255 bytes.
MAX_TERM_BYTES = 255


def node_layout(degree: int = DEFAULT_DEGREE) -> dict[str, int]:
    """Byte sizes of every Table II field for a given B-tree degree.

    For the paper's degree of 16 the totals reproduce Table II exactly,
    including the 4 padding bytes that round the node to 512 bytes (eight
    coalesced 64-byte lines).
    """
    max_keys = 2 * degree - 1
    fields = {
        "valid_term_number": POINTER_BYTES,
        "term_string_pointers": max_keys * POINTER_BYTES,
        "leaf_indicator": POINTER_BYTES,
        "postings_pointers": max_keys * POINTER_BYTES,
        "child_pointers": (max_keys + 1) * POINTER_BYTES,
        "string_caches": max_keys * STRING_CACHE_BYTES,
    }
    raw = sum(fields.values())
    fields["padding"] = (-raw) % NODE_ALIGN_BYTES
    fields["total"] = raw + fields["padding"]
    return fields


#: Table II's bottom line for the paper degree: 512 bytes per node.
NODE_SIZE_BYTES = node_layout(DEFAULT_DEGREE)["total"]
assert NODE_SIZE_BYTES == 8 * NODE_ALIGN_BYTES  # eight coalesced lines

# ---------------------------------------------------------------------- #
# Table I — the trie index space
# ---------------------------------------------------------------------- #

#: Paper's fixed trie height ``h``.
TRIE_HEIGHT = 3

#: First index of the full-prefix tail category: one special collection,
#: ten pure-number collections, twenty-six short/special collections.
TRIE_TAIL_BASE = 1 + 10 + 26

#: Total collections for the paper height: 1 + 10 + 26 + 26³ = 17,613.
NUM_TRIE_COLLECTIONS = TRIE_TAIL_BASE + 26**TRIE_HEIGHT
