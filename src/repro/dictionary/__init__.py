"""The paper's hybrid trie + B-tree dictionary (Section III.B).

The dictionary is the central coordination structure of the indexing system:

- :mod:`repro.dictionary.trie` — the height-3 trie of Table I, implemented
  (exactly as the paper does) as a flat lookup *table* mapping the first
  letters of a term to one of 17,613 *trie collections*.  The shared prefix
  captured by the trie is stripped from stored terms.
- :mod:`repro.dictionary.string_store` — the term-string heap of Fig 6:
  each string is stored with its length in the first byte and addressed by
  integer pointers, exactly how the CUDA indexer expects term strings laid
  out in device memory.
- :mod:`repro.dictionary.btree` — the degree-16 B-tree whose 512-byte node
  layout (Table II) embeds a 4-byte string cache per key so that most
  comparisons never dereference the string pointer.
- :mod:`repro.dictionary.dictionary` — the forest of per-collection B-trees
  plus combine/serialize steps ("Dictionary Combine" and "Dictionary Write"
  rows of Table VI).
"""

from repro.dictionary.btree import BTree, BTreeNode, BTreeStats, NODE_SIZE_BYTES
from repro.dictionary.dictionary import Dictionary, DictionaryShard
from repro.dictionary.node_codec import DeviceTreeImage, pack_node, unpack_node
from repro.dictionary.serialize import load_dictionary, save_dictionary
from repro.dictionary.string_store import StringStore
from repro.dictionary.trie import (
    NUM_TRIE_COLLECTIONS,
    TrieCategory,
    TrieTable,
)

__all__ = [
    "TrieTable",
    "TrieCategory",
    "NUM_TRIE_COLLECTIONS",
    "StringStore",
    "BTree",
    "BTreeNode",
    "BTreeStats",
    "NODE_SIZE_BYTES",
    "Dictionary",
    "DictionaryShard",
    "DeviceTreeImage",
    "pack_node",
    "unpack_node",
    "save_dictionary",
    "load_dictionary",
]
