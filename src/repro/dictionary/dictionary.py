"""The dictionary forest: one independent B-tree per trie collection.

Section III.B: "terms are mapped into different groups, called trie
collections, followed by building a B-tree for each trie collection".  Each
indexer owns an *exclusive* subset of collections ("every indexer keeps an
independent and exclusive part of the global dictionary"), so the natural
unit here is a :class:`DictionaryShard` owning some collection indices; the
engine's post-run "Dictionary Combine" step (Table VI) unions disjoint
shards into the full :class:`Dictionary`.

Term identifiers double as the paper's "pointers to postings lists":
globally unique integers allocated per shard from disjoint id spaces, so a
combine never needs to renumber anything — exactly why the paper's combine
step costs ~2.5 seconds on a terabyte-scale build.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dictionary.btree import BTree, BTreeStats
from repro.dictionary.layout import DEFAULT_DEGREE
from repro.dictionary.string_store import StringStore
from repro.dictionary.trie import TrieTable

__all__ = ["Dictionary", "DictionaryShard", "SHARD_ID_SPACE_BITS"]

#: Each shard allocates term ids in ``[shard_id << 40, (shard_id+1) << 40)``.
SHARD_ID_SPACE_BITS = 40


class DictionaryShard:
    """The part of the dictionary owned by a single indexer.

    Parameters
    ----------
    trie:
        The shared :class:`TrieTable`; all shards must use the same table.
    shard_id:
        Disambiguates term-id spaces between indexers.
    owned_collections:
        Trie-collection indices this shard may touch, or ``None`` for all
        (used by serial baselines and by :class:`Dictionary` itself).
    degree, use_string_cache:
        Forwarded to each per-collection :class:`BTree`.
    """

    def __init__(
        self,
        trie: TrieTable | None = None,
        shard_id: int = 0,
        owned_collections: Iterable[int] | None = None,
        degree: int = DEFAULT_DEGREE,
        use_string_cache: bool = True,
    ) -> None:
        self.trie = trie if trie is not None else TrieTable()
        self.shard_id = shard_id
        self.owned: frozenset[int] | None = (
            frozenset(owned_collections) if owned_collections is not None else None
        )
        self.degree = degree
        self.use_string_cache = use_string_cache
        self.trees: dict[int, BTree] = {}
        self._next_id = shard_id << SHARD_ID_SPACE_BITS
        self._id_limit = (shard_id + 1) << SHARD_ID_SPACE_BITS

    # ------------------------------------------------------------------ #
    # Term-id allocation
    # ------------------------------------------------------------------ #

    def _alloc_id(self) -> int:
        term_id = self._next_id
        if term_id >= self._id_limit:
            raise OverflowError(f"shard {self.shard_id} exhausted its term-id space")
        self._next_id += 1
        return term_id

    # ------------------------------------------------------------------ #
    # Tree access
    # ------------------------------------------------------------------ #

    def tree_for(self, collection_index: int) -> BTree:
        """The B-tree of a collection, creating it on first touch."""
        tree = self.trees.get(collection_index)
        if tree is None:
            if self.owned is not None and collection_index not in self.owned:
                raise PermissionError(
                    f"shard {self.shard_id} does not own trie collection {collection_index}"
                )
            self.trie._check_index(collection_index)
            tree = BTree(
                store=StringStore(),
                term_id_allocator=self._alloc_id,
                degree=self.degree,
                use_string_cache=self.use_string_cache,
            )
            self.trees[collection_index] = tree
        return tree

    # ------------------------------------------------------------------ #
    # Insertion / lookup
    # ------------------------------------------------------------------ #

    def insert_suffix(self, collection_index: int, suffix: bytes) -> tuple[int, bool]:
        """Insert a pre-split suffix (the indexer hot path)."""
        return self.tree_for(collection_index).insert(suffix)

    def add_term(self, term: str) -> tuple[int, bool]:
        """Split a whole term through the trie and insert it."""
        split = self.trie.split(term)
        return self.insert_suffix(split.index, split.suffix.encode("utf-8"))

    def lookup(self, term: str) -> int | None:
        """Postings pointer for ``term``, or ``None``."""
        split = self.trie.split(term)
        tree = self.trees.get(split.index)
        if tree is None:
            return None
        return tree.search(split.suffix.encode("utf-8"))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def terms(self) -> Iterator[tuple[str, int]]:
        """All ``(full term, postings pointer)`` pairs, collection order."""
        for cidx in sorted(self.trees):
            prefix = self.trie.prefix_for(cidx)
            for suffix, term_id in self.trees[cidx].items():
                yield prefix + suffix.decode("utf-8"), term_id

    def term_count(self) -> int:
        """Number of distinct terms across owned collections."""
        return sum(len(t) for t in self.trees.values())

    def stats(self) -> BTreeStats:
        """Aggregate work counters over all trees."""
        total = BTreeStats()
        for tree in self.trees.values():
            total.merge(tree.stats)
        return total

    def string_bytes(self) -> int:
        """Total term-string heap bytes across collections."""
        return sum(t.store.byte_size for t in self.trees.values())

    def check_invariants(self) -> None:
        """Structural validation of every tree (tests only)."""
        for tree in self.trees.values():
            tree.check_invariants()

    def __len__(self) -> int:
        return self.term_count()


class Dictionary(DictionaryShard):
    """The full (combined) dictionary.

    A :class:`Dictionary` is a shard that owns everything; it is what the
    engine hands back after the combine step, and what the serial baselines
    build directly.
    """

    def __init__(
        self,
        trie: TrieTable | None = None,
        degree: int = DEFAULT_DEGREE,
        use_string_cache: bool = True,
    ) -> None:
        super().__init__(
            trie=trie,
            shard_id=0,
            owned_collections=None,
            degree=degree,
            use_string_cache=use_string_cache,
        )

    @classmethod
    def combine(cls, shards: Iterable[DictionaryShard]) -> "Dictionary":
        """Union disjoint shards into one dictionary (Table VI "Combine").

        Shards must share a trie table and own pairwise-disjoint collection
        sets; the combine only moves tree references, which is why it is
        practically free.
        """
        shards = list(shards)
        if not shards:
            return cls()
        trie = shards[0].trie
        combined = cls(
            trie=trie,
            degree=shards[0].degree,
            use_string_cache=shards[0].use_string_cache,
        )
        for shard in shards:
            if shard.trie.height != trie.height:
                raise ValueError("cannot combine shards with different trie heights")
            for cidx, tree in shard.trees.items():
                if cidx in combined.trees:
                    raise ValueError(
                        f"trie collection {cidx} owned by more than one shard; "
                        "shards must be disjoint"
                    )
                combined.trees[cidx] = tree
        return combined
