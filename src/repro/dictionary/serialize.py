"""Dictionary persistence with front-coding ("Dictionary Write", Table VI).

"The dictionary is kept in main memory until the last batch of documents is
processed, after which it is moved to the disk."  Terms inside one trie
collection are written in lexicographic order, so adjacent suffixes tend to
share prefixes; following Heinz & Zobel [4] (cited in Section II) we apply
front-coding: each suffix stores the length of the prefix it shares with
its predecessor plus the differing tail.

On-disk format::

    magic  b"RPRODIC1"                8 bytes
    uvarint trie_height
    uvarint n_nonempty_collections
    per collection:
        uvarint collection_index
        uvarint n_terms
        per term (sorted): uvarint lcp, uvarint tail_len, tail bytes,
                           uvarint term_id
    footer: CRC32 of everything above, 4 bytes little-endian

Loading verifies the footer first (raising
:class:`~repro.robustness.errors.ChecksumError` on mismatch), then returns
a plain ``{term: postings pointer}`` map — enough for the query path
(:class:`repro.postings.reader.PostingsReader`) without rebuilding B-trees.
"""

from __future__ import annotations

import zlib

from repro.dictionary.dictionary import DictionaryShard
from repro.dictionary.layout import MAX_TERM_BYTES
from repro.dictionary.trie import TrieTable
from repro.postings.compression import decode_uvarint, encode_uvarint
from repro.robustness.errors import ChecksumError

__all__ = ["save_dictionary", "load_dictionary", "DICT_MAGIC", "DICT_CRC_BYTES"]

DICT_MAGIC = b"RPRODIC1"
#: Width of the little-endian CRC32 footer trailing the dictionary blob.
DICT_CRC_BYTES = 4


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def save_dictionary(dictionary: DictionaryShard, path: str) -> int:
    """Serialize to ``path``; returns bytes written."""
    out = bytearray(DICT_MAGIC)
    encode_uvarint(dictionary.trie.height, out)
    nonempty = [cidx for cidx in sorted(dictionary.trees) if len(dictionary.trees[cidx])]
    encode_uvarint(len(nonempty), out)
    for cidx in nonempty:
        tree = dictionary.trees[cidx]
        encode_uvarint(cidx, out)
        encode_uvarint(len(tree), out)
        prev = b""
        for suffix, term_id in tree.items():  # in-order = lexicographic
            lcp = _common_prefix_len(prev, suffix)
            tail = suffix[lcp:]
            encode_uvarint(lcp, out)
            encode_uvarint(len(tail), out)
            out.extend(tail)
            encode_uvarint(term_id, out)
            prev = suffix
    crc = zlib.crc32(out) & 0xFFFFFFFF
    with open(path, "wb") as fh:
        fh.write(out)
        fh.write(crc.to_bytes(DICT_CRC_BYTES, "little"))
    return len(out) + DICT_CRC_BYTES


def load_dictionary(path: str) -> dict[str, int]:
    """Load a serialized dictionary into a ``{term: term_id}`` map."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < len(DICT_MAGIC) + DICT_CRC_BYTES:
        raise ValueError(f"{path} is too short to be a dictionary ({len(data)} bytes)")
    stored = int.from_bytes(data[-DICT_CRC_BYTES:], "little")
    data = data[:-DICT_CRC_BYTES]
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if stored != actual:
        raise ChecksumError(path, stored, actual)
    if data[: len(DICT_MAGIC)] != DICT_MAGIC:
        raise ValueError(f"{path} is not a serialized dictionary (bad magic)")
    pos = len(DICT_MAGIC)
    height, pos = decode_uvarint(data, pos)
    trie = TrieTable(height=height)
    n_collections, pos = decode_uvarint(data, pos)
    terms: dict[str, int] = {}
    for _ in range(n_collections):
        cidx, pos = decode_uvarint(data, pos)
        n_terms, pos = decode_uvarint(data, pos)
        prefix = trie.prefix_for(cidx)
        prev = b""
        for _ in range(n_terms):
            lcp, pos = decode_uvarint(data, pos)
            tail_len, pos = decode_uvarint(data, pos)
            if lcp + tail_len > MAX_TERM_BYTES:
                raise ValueError(
                    f"{path}: suffix of {lcp + tail_len} bytes exceeds the "
                    f"{MAX_TERM_BYTES}-byte Fig 6 term limit (corrupt record?)"
                )
            tail = data[pos : pos + tail_len]
            pos += tail_len
            term_id, pos = decode_uvarint(data, pos)
            suffix = prev[:lcp] + tail
            terms[prefix + suffix.decode("utf-8")] = term_id
            prev = suffix
    return terms
