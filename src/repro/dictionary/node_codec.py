"""Binary node packing: the literal 512-byte layout of Table II.

The CUDA indexer does not see Python objects — it sees 512-byte nodes in
device memory, loaded into shared memory with one coalesced stream, plus
the Fig 6 length-prefixed string heap.  This module produces exactly that
representation:

- :func:`pack_node` / :func:`unpack_node` serialize one
  :class:`~repro.dictionary.btree.BTreeNode` to/from the Table II field
  order (valid count, 31 string pointers, leaf flag, 31 postings
  pointers, 32 child pointers, 31 four-byte caches, padding), every field
  a little-endian ``u32``;
- :class:`DeviceTreeImage` packs a whole B-tree into a contiguous node
  array + string heap (the "device memory" image) and can **search using
  only the bytes** — caches first, full heap strings on 4-byte ties,
  child pointers to descend — via the same Fig 7 warp comparison the GPU
  indexer models.  Tests assert byte-search ≡ object-search, proving the
  512-byte layout is complete.

Pointer-width note: device pointers are 4 bytes, so packing requires
string offsets, postings pointers and node ids below 2³² — true for any
single tree this reproduction builds (shard-prefixed *global* term ids do
not fit and are remapped by the engine's per-run mapping tables, exactly
the indirection the paper's output format provides).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.dictionary.btree import BTree, BTreeNode
from repro.dictionary.layout import DEFAULT_DEGREE, node_layout
from repro.gpusim.memory import SharedMemory
from repro.gpusim.reduction import warp_find_slot

__all__ = ["pack_node", "unpack_node", "DeviceTreeImage", "NULL_POINTER"]

#: Device null (no child / unused slot).
NULL_POINTER = 0xFFFFFFFF

_U32 = struct.Struct("<I")


def _offsets(degree: int) -> dict[str, int]:
    """Byte offset of each Table II field for a given degree."""
    layout = node_layout(degree)
    out = {}
    pos = 0
    for field in (
        "valid_term_number",
        "term_string_pointers",
        "leaf_indicator",
        "postings_pointers",
        "child_pointers",
        "string_caches",
    ):
        out[field] = pos
        pos += layout[field]
    out["padding"] = pos
    out["total"] = layout["total"]
    return out


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value < NULL_POINTER:
        raise ValueError(f"{what} {value} does not fit a 4-byte device pointer")
    return value


def pack_node(
    node: BTreeNode,
    child_ids: list[int],
    degree: int = DEFAULT_DEGREE,
) -> bytes:
    """Serialize one node to its exact on-device bytes.

    ``child_ids`` are the device node ids of ``node.children`` (empty for
    leaves); unused slots are filled with :data:`NULL_POINTER`.
    """
    max_keys = 2 * degree - 1
    if node.nkeys > max_keys:
        raise ValueError(f"node has {node.nkeys} keys; degree {degree} holds {max_keys}")
    if len(child_ids) != len(node.children):
        raise ValueError("child_ids must be parallel to node.children")
    out = bytearray(node_layout(degree)["total"])
    off = _offsets(degree)

    _U32.pack_into(out, off["valid_term_number"], node.nkeys)
    for i, ptr in enumerate(node.string_ptrs):
        _U32.pack_into(out, off["term_string_pointers"] + 4 * i, _check_u32(ptr, "string pointer"))
    for i in range(node.nkeys, max_keys):
        _U32.pack_into(out, off["term_string_pointers"] + 4 * i, NULL_POINTER)
    _U32.pack_into(out, off["leaf_indicator"], 1 if node.leaf else 0)
    for i, ptr in enumerate(node.postings_ptrs):
        _U32.pack_into(out, off["postings_pointers"] + 4 * i, _check_u32(ptr, "postings pointer"))
    for i in range(node.nkeys, max_keys):
        _U32.pack_into(out, off["postings_pointers"] + 4 * i, NULL_POINTER)
    for i in range(max_keys + 1):
        child = child_ids[i] if i < len(child_ids) else NULL_POINTER
        if child != NULL_POINTER:
            _check_u32(child, "child pointer")
        _U32.pack_into(out, off["child_pointers"] + 4 * i, child)
    for i, cache in enumerate(node.caches):
        out[off["string_caches"] + 4 * i : off["string_caches"] + 4 * i + 4] = cache
    return bytes(out)


@dataclass
class UnpackedNode:
    """A node decoded back from device bytes."""

    nkeys: int
    leaf: bool
    string_ptrs: list[int]
    postings_ptrs: list[int]
    child_ids: list[int]
    caches: list[bytes]


def unpack_node(data: bytes, degree: int = DEFAULT_DEGREE) -> UnpackedNode:
    """Inverse of :func:`pack_node`."""
    off = _offsets(degree)
    if len(data) != off["total"]:
        raise ValueError(f"expected {off['total']} node bytes, got {len(data)}")
    max_keys = 2 * degree - 1
    nkeys = _U32.unpack_from(data, off["valid_term_number"])[0]
    if nkeys > max_keys:
        raise ValueError(f"corrupt node: {nkeys} keys > {max_keys}")
    leaf = bool(_U32.unpack_from(data, off["leaf_indicator"])[0])
    string_ptrs = [
        _U32.unpack_from(data, off["term_string_pointers"] + 4 * i)[0] for i in range(nkeys)
    ]
    postings_ptrs = [
        _U32.unpack_from(data, off["postings_pointers"] + 4 * i)[0] for i in range(nkeys)
    ]
    child_ids = []
    if not leaf:
        child_ids = [
            _U32.unpack_from(data, off["child_pointers"] + 4 * i)[0] for i in range(nkeys + 1)
        ]
    caches = [
        bytes(data[off["string_caches"] + 4 * i : off["string_caches"] + 4 * i + 4])
        for i in range(nkeys)
    ]
    return UnpackedNode(nkeys, leaf, string_ptrs, postings_ptrs, child_ids, caches)


class DeviceTreeImage:
    """A whole B-tree as device memory: node array + string heap.

    Node ``i`` occupies bytes ``[i·512, (i+1)·512)`` of :attr:`nodes`;
    :attr:`heap` is the Fig 6 string heap.  :meth:`search` runs the GPU
    algorithm over these bytes alone.
    """

    def __init__(
        self,
        nodes: bytes,
        heap: bytes,
        root_id: int,
        degree: int,
        postings_map: list[int] | None = None,
    ) -> None:
        self.nodes = nodes
        self.heap = heap
        self.root_id = root_id
        self.degree = degree
        self.node_size = node_layout(degree)["total"]
        #: When ids were remapped at build time: device postings pointer →
        #: original term id (the paper's run-header mapping-table
        #: indirection: "this mapping table is indexed by the pointers to
        #: postings lists stored in the dictionary").
        self.postings_map = postings_map
        if len(nodes) % self.node_size:
            raise ValueError("node array is not a whole number of nodes")

    @classmethod
    def build(cls, tree: BTree, remap_ids: bool = False) -> "DeviceTreeImage":
        """Pack every node of ``tree`` (BFS order, root first).

        ``remap_ids`` replaces the tree's term ids by dense device-local
        u32 slots (recorded in :attr:`postings_map`).  The engine's shard
        ids occupy 40+ bits, so packing a shard's tree *requires* the
        remap — which is faithful: on the real GPU, postings pointers
        index the per-run mapping table, not global ids.
        """
        order: list[BTreeNode] = []
        ids: dict[int, int] = {}
        queue = [tree.root]
        while queue:
            node = queue.pop(0)
            ids[id(node)] = len(order)
            order.append(node)
            queue.extend(node.children)

        postings_map: list[int] | None = None
        saved: list[list[int]] | None = None
        if remap_ids:
            postings_map = []
            saved = []
            for node in order:
                saved.append(list(node.postings_ptrs))
                for i, term_id in enumerate(node.postings_ptrs):
                    node.postings_ptrs[i] = len(postings_map)
                    postings_map.append(term_id)
        try:
            blob = bytearray()
            for node in order:
                child_ids = [ids[id(c)] for c in node.children]
                blob += pack_node(node, child_ids, tree.degree)
        finally:
            if saved is not None:
                for node, original in zip(order, saved):
                    node.postings_ptrs[:] = original
        return cls(
            bytes(blob),
            tree.store.raw_bytes(),
            root_id=0,
            degree=tree.degree,
            postings_map=postings_map,
        )

    def term_id_of(self, device_pointer: int) -> int:
        """Resolve a device postings pointer back to the original term id."""
        if self.postings_map is None:
            return device_pointer
        return self.postings_map[device_pointer]

    @property
    def node_count(self) -> int:
        return len(self.nodes) // self.node_size

    def node_bytes(self, node_id: int) -> bytes:
        if not 0 <= node_id < self.node_count:
            raise IndexError(f"node {node_id} outside image of {self.node_count} nodes")
        start = node_id * self.node_size
        return self.nodes[start : start + self.node_size]

    def heap_string(self, ptr: int) -> bytes:
        """Dereference a Fig 6 string pointer in the heap."""
        length = self.heap[ptr]
        return self.heap[ptr + 1 : ptr + 1 + length]

    # ------------------------------------------------------------------ #

    def search(
        self,
        suffix: bytes,
        shared: SharedMemory | None = None,
    ) -> int | None:
        """Find ``suffix`` using only the device bytes (Fig 7 over Fig 6).

        Each node on the descent is staged into ``shared`` memory (when
        provided) exactly as the kernel would, then all keys are compared
        by the warp: 4-byte caches first, heap dereference only on a
        non-conclusive tie.  Returns the postings pointer or ``None``.
        """
        query4 = suffix[:4].ljust(4, b"\x00")
        node_id = self.root_id
        while True:
            raw = self.node_bytes(node_id)
            if shared is not None:
                shared.reset()
                base = shared.alloc(self.node_size)
                shared.store(base, raw)
                # The warp reads the staged copy, never device memory.
                raw = shared.load(base, self.node_size)
            node = unpack_node(raw, self.degree)

            def compare(q: bytes, lane: int) -> int:
                cache = node.caches[lane]
                if query4 != cache:
                    return -1 if query4 < cache else 1
                if b"\x00" in cache:
                    return 0
                full = self.heap_string(node.string_ptrs[lane])
                if q == full:
                    return 0
                return -1 if q < full else 1

            slot, found = warp_find_slot(suffix, list(range(node.nkeys)), compare=compare)
            if found:
                return node.postings_ptrs[slot]
            if node.leaf:
                return None
            node_id = node.child_ids[slot]
