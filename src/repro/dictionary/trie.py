"""The trie-collection index table of Table I.

The paper replaces the top of the dictionary with a trie of fixed height 3.
Because the height is constant, no trie structure is ever built: a term's
first characters are mapped arithmetically to a *trie collection index* and
a flat table maps that index to the root of the collection's B-tree.

The index space for height ``h = 3`` (Table I):

====================  ===========================================  =========
Index                 Term category                                 Count
====================  ===========================================  =========
0                     special — anything not matching below         1
1 .. 10               pure numbers, by first digit '0'..'9'         10
11 .. 36              first char a..z AND (≤h letters OR a           26
                      non-[a-z] char among the first h chars)
37 .. 37+26^h−1       >h letters, first h chars all a..z,            26^h
                      ranked lexicographically ('aaa'..'zzz')
====================  ===========================================  =========

Total for h=3: ``1 + 10 + 26 + 17576 = 17613`` collections.

Terms inside one collection share a prefix (except collection 0), so the
dictionary stores only the *suffix*: the shared first digit/letter for
categories 1–36, or the shared first ``h`` letters for the tail category.
Stripping is bijective within a collection, which the property tests verify.

The height is a constructor parameter (default 3) so the ablation benchmark
can reproduce the paper's §III.B.1 argument that heights 2 and 4 balance
worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dictionary.layout import NUM_TRIE_COLLECTIONS, TRIE_HEIGHT, TRIE_TAIL_BASE

__all__ = ["TrieTable", "TrieCategory", "NUM_TRIE_COLLECTIONS"]

_LOWER = "abcdefghijklmnopqrstuvwxyz"
_DIGITS = "0123456789"


class TrieCategory(Enum):
    """The four term categories of Table I."""

    SPECIAL = "special"
    PURE_NUMBER = "pure_number"
    SHORT_OR_SPECIAL = "short_or_special"
    FULL_PREFIX = "full_prefix"


def _is_lower(ch: str) -> bool:
    return "a" <= ch <= "z"


def _is_digit(ch: str) -> bool:
    return "0" <= ch <= "9"


@dataclass(frozen=True)
class TrieSplit:
    """Result of mapping a term through the trie table."""

    index: int
    suffix: str
    category: TrieCategory


class TrieTable:
    """Arithmetic implementation of the Table I trie.

    Parameters
    ----------
    height:
        Trie height ``h >= 1``; the paper uses 3.  The tail category then
        has ``26**h`` entries and strips ``h`` characters.
    """

    def __init__(self, height: int = TRIE_HEIGHT) -> None:
        if height < 1:
            raise ValueError(f"trie height must be >= 1, got {height}")
        self.height = height
        self._tail_base = TRIE_TAIL_BASE
        self._tail_count = 26**height
        self.num_collections = self._tail_base + self._tail_count

    # ------------------------------------------------------------------ #
    # Forward mapping
    # ------------------------------------------------------------------ #

    def split(self, term: str) -> TrieSplit:
        """Map ``term`` to ``(collection index, stored suffix, category)``.

        ``term`` is the post-parsing form: already lower-cased and stemmed.
        """
        if not term:
            raise ValueError("cannot index an empty term")
        h = self.height
        first = term[0]
        if _is_digit(first):
            if all(_is_digit(c) for c in term):
                # Pure number: bucket by first digit, strip it.
                return TrieSplit(1 + (ord(first) - ord("0")), term[1:], TrieCategory.PURE_NUMBER)
            return TrieSplit(0, term, TrieCategory.SPECIAL)
        if _is_lower(first):
            head = term[:h]
            if len(term) <= h or not all(_is_lower(c) for c in head):
                # Short term, or a special character inside the prefix
                # window: bucket by first letter, strip it.
                return TrieSplit(
                    11 + (ord(first) - ord("a")), term[1:], TrieCategory.SHORT_OR_SPECIAL
                )
            rank = 0
            for c in head:
                rank = rank * 26 + (ord(c) - ord("a"))
            return TrieSplit(self._tail_base + rank, term[h:], TrieCategory.FULL_PREFIX)
        return TrieSplit(0, term, TrieCategory.SPECIAL)

    def trie_index(self, term: str) -> int:
        """Collection index only (the hot path used by the tokenizer)."""
        return self.split(term).index

    # ------------------------------------------------------------------ #
    # Inverse mapping
    # ------------------------------------------------------------------ #

    def prefix_for(self, index: int) -> str:
        """The shared prefix stripped from terms in collection ``index``.

        Collection 0 strips nothing, so its "prefix" is the empty string.
        """
        self._check_index(index)
        if index == 0:
            return ""
        if index <= 10:
            return _DIGITS[index - 1]
        if index < self._tail_base:
            return _LOWER[index - 11]
        rank = index - self._tail_base
        chars = []
        for _ in range(self.height):
            rank, rem = divmod(rank, 26)
            chars.append(_LOWER[rem])
        return "".join(reversed(chars))

    def reconstruct(self, index: int, suffix: str) -> str:
        """Rebuild the original term from ``(index, suffix)``."""
        return self.prefix_for(index) + suffix

    def category_of(self, index: int) -> TrieCategory:
        """Which Table I category a collection index belongs to."""
        self._check_index(index)
        if index == 0:
            return TrieCategory.SPECIAL
        if index <= 10:
            return TrieCategory.PURE_NUMBER
        if index < self._tail_base:
            return TrieCategory.SHORT_OR_SPECIAL
        return TrieCategory.FULL_PREFIX

    # ------------------------------------------------------------------ #
    # Reporting (Table I benchmark)
    # ------------------------------------------------------------------ #

    def category_ranges(self) -> dict[TrieCategory, tuple[int, int]]:
        """Inclusive index ranges per category, for the Table I report."""
        return {
            TrieCategory.SPECIAL: (0, 0),
            TrieCategory.PURE_NUMBER: (1, 10),
            TrieCategory.SHORT_OR_SPECIAL: (11, 36),
            TrieCategory.FULL_PREFIX: (self._tail_base, self.num_collections - 1),
        }

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_collections:
            raise IndexError(
                f"trie collection index {index} out of range [0, {self.num_collections})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieTable(height={self.height}, collections={self.num_collections})"
