"""Degree-16 B-tree with per-key 4-byte string caches (Table II).

One B-tree per trie collection.  The node layout mirrors Table II exactly:
with degree ``t = 16`` a node holds up to ``2t − 1 = 31`` keys — chosen by
the paper to match the CUDA warp size — and occupies 512 bytes::

    valid term number      1 × 4 B
    term string pointers  31 × 4 B
    leaf indicator         1 × 4 B
    postings pointers     31 × 4 B
    child pointers        32 × 4 B
    4-byte string caches  31 × 4 B
    padding                1 × 4 B
    total                     512 B

Keys are the *suffixes* left after the trie prefix strip, stored in a
:class:`~repro.dictionary.string_store.StringStore`; the node keeps only the
string pointer plus a cache of the first four bytes.  A comparison first
looks at the cache: because real term bytes are never ``0x00``, padding the
cache with zeros keeps cached comparison order-consistent with full
lexicographic byte order, and a cache mismatch is always conclusive.  The
full string is dereferenced only when the padded caches tie and the key may
extend past four bytes — the paper's observation that "it is a rare case
that two arbitrary terms share the same long prefix".

Insertion uses single-pass preemptive splitting, matching the paper's
*Splitting* rule ("before accessing a B-Tree node, we check to determine
whether this node is full").

All structural work funnels through :class:`BTreeStats`, which the CPU cost
model and the GPU SIMT simulator consume; the instrumentation records the
*depth* of every operation because Fig 11's declining throughput tracks the
inverse of B-tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.dictionary.layout import (
    DEFAULT_DEGREE,
    NODE_SIZE_BYTES,
    STRING_CACHE_BYTES as _CACHE_BYTES,
    node_layout,
)
from repro.dictionary.string_store import StringStore

__all__ = [
    "BTree",
    "BTreeNode",
    "BTreeStats",
    "DEFAULT_DEGREE",
    "NODE_SIZE_BYTES",
    "node_layout",
]


@dataclass
class BTreeStats:
    """Work counters consumed by the CPU/GPU cost models.

    ``depth_sum`` accumulates the node depth reached by every search/insert
    so the engine can report the average operation depth that shapes the
    Fig 11 curve.
    """

    searches: int = 0
    inserts: int = 0
    duplicate_hits: int = 0
    node_visits: int = 0
    key_comparisons: int = 0
    cache_resolved: int = 0
    full_string_fetches: int = 0
    splits: int = 0
    shifts: int = 0
    depth_sum: int = 0

    def merge(self, other: "BTreeStats") -> None:
        """Fold another tree's counters into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def operations(self) -> int:
        """Searches plus insert attempts."""
        return self.searches + self.inserts + self.duplicate_hits

    @property
    def mean_depth(self) -> float:
        """Average node depth per operation (0 when idle)."""
        ops = self.operations
        return self.depth_sum / ops if ops else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of key comparisons resolved inside the 4-byte cache."""
        if not self.key_comparisons:
            return 0.0
        return self.cache_resolved / self.key_comparisons


class BTreeNode:
    """A single 512-byte node.

    Python-level representation keeps parallel lists, mirroring the packed
    arrays of the real layout; ``byte_size`` reports the modeled footprint.
    """

    __slots__ = ("caches", "string_ptrs", "postings_ptrs", "children", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.caches: list[bytes] = []  # 4-byte zero-padded prefixes
        self.string_ptrs: list[int] = []
        self.postings_ptrs: list[int] = []
        self.children: list["BTreeNode"] = []
        self.leaf = leaf

    @property
    def nkeys(self) -> int:
        """The "valid term number" field."""
        return len(self.string_ptrs)

    def byte_size(self, degree: int = DEFAULT_DEGREE) -> int:
        """Modeled on-device size of this node (constant per Table II)."""
        return node_layout(degree)["total"]


def _pad4(payload: bytes) -> bytes:
    """First four bytes of ``payload``, zero-padded — the cache field."""
    return payload[:_CACHE_BYTES].ljust(_CACHE_BYTES, b"\x00")


class BTree:
    """B-tree over suffix byte strings with postings-pointer values.

    Parameters
    ----------
    store:
        Shared :class:`StringStore` holding full suffix strings.
    term_id_allocator:
        Zero-argument callable handing out postings pointers for new terms.
        The :class:`~repro.dictionary.dictionary.Dictionary` passes a global
        allocator; standalone trees default to a local counter.
    degree:
        Minimum degree ``t`` (paper: 16).  Exposed for the ablation bench.
    use_string_cache:
        Disable to reproduce the "no cache" ablation — every comparison then
        dereferences the full string.
    """

    def __init__(
        self,
        store: StringStore | None = None,
        term_id_allocator: Callable[[], int] | None = None,
        degree: int = DEFAULT_DEGREE,
        use_string_cache: bool = True,
    ) -> None:
        if degree < 2:
            raise ValueError(f"B-tree degree must be >= 2, got {degree}")
        self.store = store if store is not None else StringStore()
        self.degree = degree
        self.max_keys = 2 * degree - 1
        self.use_string_cache = use_string_cache
        self.stats = BTreeStats()
        #: Optional slot-search strategy override.  The GPU indexer's
        #: warp-fidelity mode installs a hook that runs the Fig 7
        #: parallel-compare + reduction instead of binary search; the hook
        #: receives ``(tree, query, query4, node)`` and returns
        #: ``(slot, found)`` with the same contract as ``_find_slot``.
        self.find_slot_hook = None
        self.root = BTreeNode(leaf=True)
        self.node_count = 1
        self.term_count = 0
        if term_id_allocator is None:
            counter = iter(range(1 << 62))
            term_id_allocator = lambda: next(counter)  # noqa: E731
        self._alloc = term_id_allocator

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #

    def _compare(self, query: bytes, query4: bytes, node: BTreeNode, i: int) -> int:
        """Three-way compare of ``query`` against key ``i`` of ``node``.

        Returns negative/zero/positive like C's ``strcmp``.  Uses the 4-byte
        cache when it is conclusive and counts how the comparison resolved.
        """
        self.stats.key_comparisons += 1
        if self.use_string_cache:
            cache = node.caches[i]
            if query4 != cache:
                self.stats.cache_resolved += 1
                return -1 if query4 < cache else 1
            # Padded caches tie.  A zero byte in the cache means the key is
            # shorter than four bytes and therefore fully cached: the tie is
            # a true equality (query must share the padding-zero property).
            if b"\x00" in cache:
                self.stats.cache_resolved += 1
                return 0
            # Key is >= 4 bytes with an identical first-4 prefix: only now
            # pay for the pointer dereference.
        full = self.store.get(node.string_ptrs[i])
        self.stats.full_string_fetches += 1
        if query == full:
            return 0
        return -1 if query < full else 1

    def _find_slot(self, query: bytes, query4: bytes, node: BTreeNode) -> tuple[int, bool]:
        """Index of the first key >= query, plus whether it equals query.

        The CPU indexer walks keys with binary search; the GPU indexer
        compares all 31 keys with one warp (see
        :meth:`repro.indexers.gpu.GPUIndexer`).  Both reduce to this slot.
        """
        if self.find_slot_hook is not None:
            return self.find_slot_hook(self, query, query4, node)
        lo, hi = 0, node.nkeys
        while lo < hi:
            mid = (lo + hi) // 2
            cmp = self._compare(query, query4, node, mid)
            if cmp == 0:
                return mid, True
            if cmp < 0:
                hi = mid
            else:
                lo = mid + 1
        return lo, False

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def search(self, suffix: bytes) -> int | None:
        """Postings pointer for ``suffix``, or ``None`` if absent."""
        self.stats.searches += 1
        query4 = _pad4(suffix)
        node = self.root
        depth = 0
        while True:
            self.stats.node_visits += 1
            slot, found = self._find_slot(suffix, query4, node)
            if found:
                self.stats.depth_sum += depth
                return node.postings_ptrs[slot]
            if node.leaf:
                self.stats.depth_sum += depth
                return None
            node = node.children[slot]
            depth += 1

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #

    def insert(self, suffix: bytes) -> tuple[int, bool]:
        """Insert ``suffix`` if new; return ``(postings pointer, created)``.

        Implements the paper's three node operations — *searching*,
        *inserting* (with the right-shift of larger keys) and preemptive
        *splitting* — in a single root-to-leaf pass.

        Keys may not contain NUL bytes: the 4-byte cache pads with zeros
        and relies on real term bytes never being ``0x00`` (true for any
        UTF-8 term text; enforced here so corrupt input fails loudly
        instead of colliding in the cache).
        """
        if 0 in suffix:
            raise ValueError("term suffixes may not contain NUL bytes")
        query4 = _pad4(suffix)
        if self.root.nkeys == self.max_keys:
            old_root = self.root
            self.root = BTreeNode(leaf=False)
            self.root.children.append(old_root)
            self.node_count += 1
            self._split_child(self.root, 0)
        node = self.root
        depth = 0
        while True:
            self.stats.node_visits += 1
            slot, found = self._find_slot(suffix, query4, node)
            if found:
                self.stats.duplicate_hits += 1
                self.stats.depth_sum += depth
                return node.postings_ptrs[slot], False
            if node.leaf:
                term_id = self._alloc()
                ptr = self.store.add(suffix)
                node.caches.insert(slot, _pad4(suffix))
                node.string_ptrs.insert(slot, ptr)
                node.postings_ptrs.insert(slot, term_id)
                # Keys shifted right to open the blank location.
                self.stats.shifts += node.nkeys - 1 - slot
                self.stats.inserts += 1
                self.stats.depth_sum += depth
                self.term_count += 1
                return term_id, True
            child = node.children[slot]
            if child.nkeys == self.max_keys:
                self._split_child(node, slot)
                cmp = self._compare(suffix, query4, node, slot)
                if cmp == 0:
                    self.stats.duplicate_hits += 1
                    self.stats.depth_sum += depth
                    return node.postings_ptrs[slot], False
                if cmp > 0:
                    slot += 1
                child = node.children[slot]
            node = child
            depth += 1

    def _split_child(self, parent: BTreeNode, index: int) -> None:
        """Split the full child at ``parent.children[index]``.

        Median key moves up into the parent; the upper ``t − 1`` keys move
        into a new right sibling.
        """
        t = self.degree
        child = parent.children[index]
        right = BTreeNode(leaf=child.leaf)
        self.node_count += 1
        self.stats.splits += 1

        right.caches = child.caches[t:]
        right.string_ptrs = child.string_ptrs[t:]
        right.postings_ptrs = child.postings_ptrs[t:]
        median = (child.caches[t - 1], child.string_ptrs[t - 1], child.postings_ptrs[t - 1])
        del child.caches[t - 1 :]
        del child.string_ptrs[t - 1 :]
        del child.postings_ptrs[t - 1 :]
        if not child.leaf:
            right.children = child.children[t:]
            del child.children[t:]

        parent.caches.insert(index, median[0])
        parent.string_ptrs.insert(index, median[1])
        parent.postings_ptrs.insert(index, median[2])
        parent.children.insert(index + 1, right)
        self.stats.shifts += parent.nkeys - 1 - index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def items(self) -> Iterator[tuple[bytes, int]]:
        """In-order ``(suffix, postings pointer)`` pairs."""
        yield from self._walk(self.root)

    def _walk(self, node: BTreeNode) -> Iterator[tuple[bytes, int]]:
        for i in range(node.nkeys):
            if not node.leaf:
                yield from self._walk(node.children[i])
            yield self.store.get(node.string_ptrs[i]), node.postings_ptrs[i]
        if not node.leaf:
            yield from self._walk(node.children[node.nkeys])

    def height(self) -> int:
        """Edge-count height of the tree (a lone root has height 0)."""
        h = 0
        node = self.root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` on any structural violation.

        Checked: key ordering (globally sorted in-order walk), per-node key
        bounds, uniform leaf depth, child counts, and cache fields matching
        the stored strings.  Used heavily by the hypothesis tests.
        """
        leaf_depths: set[int] = set()

        def recurse(node: BTreeNode, depth: int, lo: bytes | None, hi: bytes | None) -> None:
            assert node.nkeys <= self.max_keys, "node overflow"
            if node is not self.root:
                assert node.nkeys >= self.degree - 1, "node underflow"
            keys = [self.store.get(p) for p in node.string_ptrs]
            assert keys == sorted(keys), "keys out of order inside a node"
            assert len(set(keys)) == len(keys), "duplicate keys inside a node"
            for key, cache in zip(keys, node.caches):
                assert cache == _pad4(key), "cache field desynchronized"
            if lo is not None and keys:
                assert keys[0] > lo, "subtree violates lower bound"
            if hi is not None and keys:
                assert keys[-1] < hi, "subtree violates upper bound"
            if node.leaf:
                assert not node.children, "leaf with children"
                leaf_depths.add(depth)
            else:
                assert len(node.children) == node.nkeys + 1, "child count mismatch"
                bounds = [lo] + keys + [hi]
                for i, child in enumerate(node.children):
                    recurse(child, depth + 1, bounds[i], bounds[i + 1])

        recurse(self.root, 0, None, None)
        assert len(leaf_depths) <= 1, "leaves at differing depths"

    def __len__(self) -> int:
        """Number of distinct terms."""
        return self.term_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BTree(degree={self.degree}, terms={self.term_count}, "
            f"nodes={self.node_count}, height={self.height()})"
        )
