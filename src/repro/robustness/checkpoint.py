"""Run-level checkpointing: the build manifest and the resume snapshot.

A run file is only useful after a crash if three things survived
together: the run's bytes, the metadata locating it, and the in-memory
indexing state needed to continue *exactly* where the run ended.  Two
artifacts provide that, both written at every run boundary (Fig 8's
natural barrier — all accumulators are drained, so the only live state is
the dictionary forest, the doc table, and a handful of counters):

- ``build.manifest`` — append-only JSON lines, human-readable provenance:
  a header (collection + config fingerprint) followed by one record per
  completed run carrying the file list it covered, the document-ID range,
  and the run file's CRC32.  Appends are flushed and fsynced, so the
  manifest never claims a run the disk does not hold.
- ``checkpoint.bin`` — an atomically-replaced pickle of the engine state
  (trie, dictionary shards, doc table, assignment, counters).  Pickling
  one object graph preserves the shared-trie aliasing, which is why a
  resumed build allocates the same term ids and produces byte-identical
  output.

Write order per run: run file → manifest append → checkpoint replace.  A
crash between the last two leaves an extra manifest record; resume
truncates the manifest back to the checkpoint's run count and re-indexes
that run deterministically.  ``checkpoint.bin`` is deleted when a build
completes — it is crash-recovery state, not part of the index.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from dataclasses import asdict, dataclass, field

from repro.obs import runtime as obs
from repro.robustness.errors import ChecksumError

__all__ = [
    "MANIFEST_FILENAME",
    "CHECKPOINT_FILENAME",
    "RunRecord",
    "BuildManifest",
    "save_checkpoint",
    "load_checkpoint",
    "clear_checkpoint",
    "crc32_of_file",
    "verify_run_record",
]

MANIFEST_FILENAME = "build.manifest"
CHECKPOINT_FILENAME = "checkpoint.bin"
_MANIFEST_VERSION = 1


def crc32_of_file(path: str) -> int:
    """CRC32 of a file's full contents (streamed)."""
    crc = 0
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class RunRecord:
    """One completed run, as recorded durably in the manifest."""

    run_id: int
    path: str  # relative to the index directory
    crc32: int
    min_doc: int | None
    max_doc: int | None
    entry_count: int
    byte_size: int
    first_doc: int  # doc-ID offset at the start of the run
    docs: int       # documents consumed by the run
    postings: int   # postings written by the run
    file_indices: tuple[int, ...] = field(default_factory=tuple)
    files: tuple[str, ...] = field(default_factory=tuple)  # basenames

    def to_json(self) -> str:
        payload = asdict(self)
        payload["type"] = "run"
        payload["file_indices"] = list(self.file_indices)
        payload["files"] = list(self.files)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, obj: dict) -> "RunRecord":
        return cls(
            run_id=obj["run_id"],
            path=obj["path"],
            crc32=obj["crc32"],
            min_doc=obj["min_doc"],
            max_doc=obj["max_doc"],
            entry_count=obj["entry_count"],
            byte_size=obj["byte_size"],
            first_doc=obj["first_doc"],
            docs=obj["docs"],
            postings=obj["postings"],
            file_indices=tuple(obj.get("file_indices", ())),
            files=tuple(obj.get("files", ())),
        )


def verify_run_record(output_dir: str, record: RunRecord) -> None:
    """Check that a recorded run is still durable on disk."""
    path = os.path.join(output_dir, record.path)
    if not os.path.exists(path):
        raise FileNotFoundError(f"manifest records run {record.run_id} at {path}, "
                                "but the file is gone")
    actual = crc32_of_file(path)
    if actual != record.crc32:
        raise ChecksumError(path, record.crc32, actual)


class BuildManifest:
    """The append-only run ledger of one index directory."""

    def __init__(self, output_dir: str) -> None:
        self.output_dir = output_dir
        self.path = os.path.join(output_dir, MANIFEST_FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def start(self, fingerprint: int, collection_name: str, num_files: int) -> None:
        """Begin a fresh manifest (truncates any previous build's)."""
        header = json.dumps(
            {
                "type": "header",
                "version": _MANIFEST_VERSION,
                "fingerprint": fingerprint,
                "collection": collection_name,
                "num_files": num_files,
            },
            sort_keys=True,
        )
        self._write_lines([header])

    def append_run(self, record: RunRecord) -> None:
        """Durably append one completed run."""
        with open(self.path, "a", encoding="ascii") as fh:
            fh.write(record.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def truncate_runs(self, keep: int) -> None:
        """Drop run records beyond the first ``keep`` (crash cleanup)."""
        header, runs = self.load()
        lines = [json.dumps({**header, "type": "header"}, sort_keys=True)]
        lines.extend(r.to_json() for r in runs[:keep])
        self._write_lines(lines)

    def _write_lines(self, lines: list[str]) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def load(self) -> tuple[dict, list[RunRecord]]:
        """Parse the manifest into ``(header, run records)``."""
        with open(self.path, "r", encoding="ascii") as fh:
            lines = [ln for ln in (l.strip() for l in fh) if ln]
        if not lines:
            raise ValueError(f"{self.path} is empty")
        header = json.loads(lines[0])
        if header.get("type") != "header":
            raise ValueError(f"{self.path} does not start with a header record")
        runs = []
        for ln in lines[1:]:
            obj = json.loads(ln)
            if obj.get("type") != "run":
                raise ValueError(f"{self.path}: unexpected record type {obj.get('type')!r}")
            runs.append(RunRecord.from_json(obj))
        runs.sort(key=lambda r: r.run_id)
        return header, runs


# ---------------------------------------------------------------------- #
# The resume snapshot
# ---------------------------------------------------------------------- #


def save_checkpoint(output_dir: str, payload: dict) -> str:
    """Atomically replace ``checkpoint.bin`` with a pickled payload."""
    path = os.path.join(output_dir, CHECKPOINT_FILENAME)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    obs.count("robustness.checkpoint_saves")
    obs.observe("checkpoint.bytes", os.path.getsize(path))
    return path


def load_checkpoint(output_dir: str) -> dict | None:
    """The last durable checkpoint, or ``None`` when there is none."""
    path = os.path.join(output_dir, CHECKPOINT_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    obs.count("robustness.checkpoint_loads")
    return payload


def clear_checkpoint(output_dir: str) -> None:
    """Remove the crash-recovery snapshot after a successful build."""
    path = os.path.join(output_dir, CHECKPOINT_FILENAME)
    if os.path.exists(path):
        os.remove(path)
