"""Deterministic, seedable I/O fault injection for chaos tests.

The paper's experiments assume a pristine shared disk; production web
corpora do not cooperate.  This module lets tests and benchmarks inject
the failure modes that matter for a long-running indexing service —
transient read errors, truncated gzip members, flipped bytes, slow reads,
a mid-build process crash, and a dying GPU — **on demand and
reproducibly**: every decision derives from the plan's seed and the file
path, never from global randomness.

The container read path (:func:`repro.corpus.warc._inflate`) consults the
installed injector at three points::

    before_read(path)       -> may sleep, raise TransientReadError/FatalFault
    corrupt_raw(path, b)    -> may truncate / flip the *compressed* bytes
    corrupt_inflated(path, b)-> may flip the *decompressed* bytes

and the engine asks :meth:`FaultInjector.gpu_failures` before indexing
each file.  Install with the :func:`inject` context manager::

    plan = FaultPlan(seed=7, specs=[
        FaultSpec(kind="transient", path_substring="file_00002", times=2),
        FaultSpec(kind="flip", path_substring="file_00004"),
    ])
    with inject(plan) as injector:
        engine.build(collection, out)
    assert injector.counts["transient"] == 2

Specs can be restricted to a build *stage* (``"sampling"`` vs
``"build"``) so a crash aimed at the run loop does not fire during the
sampling pre-pass; the engine advertises the current stage via
:func:`set_stage`.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.robustness.errors import FatalFault, TransientReadError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "inject",
    "install",
    "uninstall",
    "active",
    "set_stage",
]

#: Fault kinds understood by the injector.
KINDS = (
    "transient",  # raise TransientReadError on the first `times` reads
    "slow",       # sleep `delay_s` before the read
    "truncate",   # chop the tail off the compressed bytes (truncated gzip)
    "flip",       # flip one byte of the decompressed stream
    "flip_raw",   # flip one byte of the compressed stream (CRC/zlib error)
    "fatal",      # raise FatalFault (simulated crash; no policy catches it)
    "gpu_fail",   # kill GPU `gpu_index` before indexing file `file_index`
    # Process-level faults, fired from *inside* a multiprocess-backend
    # worker via `worker_event` (see "Worker-context faults" below):
    "worker_crash",  # SIGKILL the worker process before it runs a task
    "worker_stall",  # sleep `delay_s` inside the worker without heartbeating
)

#: Kinds that only fire inside worker processes (`worker_event`).
WORKER_KINDS = ("worker_crash", "worker_stall")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``path_substring`` selects files (``None`` matches every file);
    ``stage`` restricts the spec to the sampling pre-pass or the build
    loop; ``times`` bounds how many reads of a matching file are affected
    (transient faults recover after ``times`` attempts — that is what
    makes them transient).
    """

    kind: str
    path_substring: str | None = None
    stage: str | None = None  # "sampling" | "build" | None (any)
    times: int = 1
    delay_s: float = 0.0          # slow reads / worker stalls
    truncate_bytes: int = 16      # how much tail to chop
    gpu_index: int = 0            # gpu_fail: which GPU ordinal dies
    file_index: int = 0           # gpu_fail: before which file it dies
    #: Worker faults only: substring of the worker slot key ("cpu-0",
    #: "gpu-1", "parser-2"); ``None`` matches any worker.  For worker
    #: kinds ``times`` bounds the *incarnation* that still fires — a
    #: restarted worker (incarnation ``times``+1) survives, which is what
    #: lets one spec express both "crash once, recover" (``times=1``) and
    #: "poison task that kills every incarnation" (large ``times``).
    worker: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def matches(self, path: str, stage: str) -> bool:
        if self.stage is not None and self.stage != stage:
            return False
        return self.path_substring is None or self.path_substring in path


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the list of faults to inject."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()) -> None:
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "specs", tuple(specs))


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically and counts events.

    Byte positions to flip and bytes to truncate derive from
    ``crc32(path) ^ seed`` so the same plan corrupts the same bytes on
    every run — chaos tests stay reproducible.  Counters are guarded by a
    lock because the engine's prefetch pool reads from worker threads.
    """

    def __init__(self, plan: FaultPlan, sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        #: reads seen per (spec position, path) — drives `times` budgets.
        self._hits: dict[tuple[int, str], int] = {}
        #: events actually injected, by kind.
        self.counts: dict[str, int] = {}
        #: (kind, path) log, in injection order.
        self.events: list[tuple[str, str]] = []
        self.stage = "build"
        #: Worker-context identity, set inside multiprocess-backend
        #: worker processes (never in the engine process).
        self.worker_key: str | None = None
        self.worker_incarnation = 1

    # ------------------------------------------------------------------ #

    def _rng_for(self, path: str) -> random.Random:
        return random.Random(zlib.crc32(path.encode("utf-8")) ^ self.plan.seed)

    def _record(self, kind: str, path: str) -> None:
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1
            self.events.append((kind, path))

    def _claim(self, spec_pos: int, spec: FaultSpec, path: str) -> bool:
        """Consume one of the spec's `times` budget for this path."""
        with self._lock:
            key = (spec_pos, path)
            used = self._hits.get(key, 0)
            if used >= spec.times:
                return False
            self._hits[key] = used + 1
            return True

    def _matching(self, path: str, kind: str) -> Iterator[tuple[int, FaultSpec]]:
        for pos, spec in enumerate(self.plan.specs):
            if spec.kind == kind and spec.matches(path, self.stage):
                yield pos, spec

    # ------------------------------------------------------------------ #
    # Hooks called from the container read path
    # ------------------------------------------------------------------ #

    def before_read(self, path: str) -> None:  # repro-lint: worker-entry
        """Slow / transient / fatal faults, in that order of severity.

        Called from the engine's prefetch pool (worker threads) via the
        container read path — hence the ``worker-entry`` marker for the
        RPR101 race analyzer, which the AST cannot infer through the
        module-level :func:`active` indirection.
        """
        for pos, spec in self._matching(path, "slow"):
            if self._claim(pos, spec, path):
                self._record("slow", path)
                self._sleep(spec.delay_s)
        for pos, spec in self._matching(path, "fatal"):
            if self._claim(pos, spec, path):
                self._record("fatal", path)
                raise FatalFault(path)
        for pos, spec in self._matching(path, "transient"):
            if self._claim(pos, spec, path):
                self._record("transient", path)
                raise TransientReadError(path, "injected transient read error")

    def corrupt_raw(self, path: str, data: bytes) -> bytes:  # repro-lint: worker-entry
        """Truncation / raw byte flips on the compressed stream."""
        for pos, spec in self._matching(path, "truncate"):
            if self._claim(pos, spec, path):
                self._record("truncate", path)
                cut = min(max(spec.truncate_bytes, 1), max(len(data) - 1, 0))
                data = data[: len(data) - cut]
        for pos, spec in self._matching(path, "flip_raw"):
            if self._claim(pos, spec, path) and data:
                self._record("flip_raw", path)
                data = _flip_one(data, self._rng_for(path))
        return data

    def corrupt_inflated(self, path: str, data: bytes) -> bytes:  # repro-lint: worker-entry
        """Byte flips on the decompressed stream."""
        for pos, spec in self._matching(path, "flip"):
            if self._claim(pos, spec, path) and data:
                self._record("flip", path)
                data = _flip_one(data, self._rng_for(path))
        return data

    # ------------------------------------------------------------------ #
    # Worker-context faults (multiprocess backend)
    # ------------------------------------------------------------------ #

    def set_worker_context(self, worker_key: str, incarnation: int) -> None:
        """Identify the current process as worker ``worker_key``.

        Called once at worker startup by
        :func:`repro.core.mp_worker.worker_main`; the incarnation number
        (1 for the original process, +1 per supervisor restart) is what
        ``times`` bounds for worker fault kinds.
        """
        self.worker_key = worker_key
        self.worker_incarnation = incarnation

    def _claim_once(self, spec_pos: int, tag: str) -> bool:
        """At most one firing per (spec, tag) within this process.

        Worker kinds bound firings by *incarnation* (each restart is a
        fresh process with a fresh injector), not by the `times` budget
        the read-path kinds consume via :meth:`_claim`.
        """
        with self._lock:
            key = (spec_pos, tag)
            if self._hits.get(key, 0):
                return False
            self._hits[key] = 1
            return True

    def worker_event(self, tag: str) -> None:
        """Stall or kill this worker before it runs the task tagged ``tag``.

        Called by worker processes only, between dequeue and execution —
        so a crash always leaves the in-flight task unacknowledged and the
        supervisor must requeue it.  ``worker_crash`` uses ``SIGKILL``:
        no atexit hooks, no finally blocks, exactly the failure mode the
        shared-memory reclamation sweep has to survive.
        """
        if self.worker_key is None:
            return
        for kind in WORKER_KINDS:
            for pos, spec in self._matching(tag, kind):
                if spec.worker is not None and spec.worker not in self.worker_key:
                    continue
                if self.worker_incarnation > spec.times:
                    continue
                if not self._claim_once(pos, tag):
                    continue
                self._record(kind, tag)
                if kind == "worker_stall":
                    self._sleep(spec.delay_s)
                else:
                    os.kill(os.getpid(), signal.SIGKILL)

    def merge_child_counts(
        self, counts: dict[str, int], events: list[tuple[str, str]]
    ) -> None:
        """Fold a worker process's injector activity into this injector.

        The multiprocess backend ships each worker a copy of the plan;
        faults the copy injects (retries it caused, bytes it flipped) are
        invisible to the engine-side injector until the worker reports
        its counter deltas back.  Merging keeps chaos-test assertions
        backend-agnostic.
        """
        with self._lock:
            for kind, n in counts.items():
                self.counts[kind] = self.counts.get(kind, 0) + n
            self.events.extend(events)

    # ------------------------------------------------------------------ #
    # Hook called from the engine's run loop
    # ------------------------------------------------------------------ #

    def gpu_failures(self, file_index: int) -> list[int]:
        """GPU ordinals that die before indexing ``file_index``."""
        failed: list[int] = []
        for pos, spec in enumerate(self.plan.specs):
            if spec.kind != "gpu_fail" or spec.file_index != file_index:
                continue
            if self._claim(pos, spec, f"<gpu{spec.gpu_index}>"):
                self._record("gpu_fail", f"<gpu{spec.gpu_index}>")
                failed.append(spec.gpu_index)
        return failed


def _flip_one(data: bytes, rng: random.Random) -> bytes:
    out = bytearray(data)
    pos = rng.randrange(len(out))
    out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


# ---------------------------------------------------------------------- #
# Module-level installation (the read path has no injector parameter)
# ---------------------------------------------------------------------- #

_active: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector."""
    global _active
    _active = injector
    return injector


def uninstall() -> None:
    """Remove the active injector (reads become fault-free again)."""
    global _active
    _active = None


def active() -> FaultInjector | None:  # repro-lint: worker-entry
    """The installed injector, or ``None`` (the common, zero-cost case)."""
    return _active


def set_stage(stage: str) -> None:
    """Advertise the current build stage to stage-filtered specs."""
    if _active is not None:
        _active.stage = stage


@contextmanager
def inject(
    plan: FaultPlan, sleep: Callable[[float], None] = time.sleep
) -> Iterator[FaultInjector]:
    """Install a plan for the duration of a ``with`` block."""
    injector = FaultInjector(plan, sleep=sleep)
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
