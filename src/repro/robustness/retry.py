"""Retry with exponential backoff for transient container-read failures.

Applied around every container read in the build path (the engine's
parsed-file stream and the sampling pre-pass).  The policy is the classic
production shape: exponential backoff with deterministic jitter, a delay
cap, a bounded attempt count, and a per-file deadline so one sick file
cannot stall a terabyte build indefinitely.

Only *transient* errors are retried: ``OSError`` family except the
clearly-permanent members (missing file, is-a-directory, permission).
:class:`~repro.corpus.warc.CorruptContainerError` is permanent by
definition — re-reading flipped bytes yields the same flipped bytes — and
goes straight to the ``on_error`` policy.

Jitter is seeded from the file path, never from wall-clock entropy, so a
rerun of the same build against the same fault plan sleeps the same
schedule — determinism is load-bearing for the chaos tests and for
byte-identical resume verification.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.robustness.errors import FatalFault, RetryExhausted, TransientReadError

T = TypeVar("T")

__all__ = ["RetryPolicy", "RetryOutcome", "retry_call", "is_transient"]

#: OSError subclasses retrying cannot fix.
_PERMANENT_OS_ERRORS = (
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying."""
    if isinstance(exc, FatalFault):
        return False
    if isinstance(exc, TransientReadError):
        return True
    return isinstance(exc, OSError) and not isinstance(exc, _PERMANENT_OS_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base · multiplier^attempt`` jittered and capped."""

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    #: Fraction of the delay randomized away (0.25 → delay × U[0.75, 1.0]).
    jitter: float = 0.25
    #: Wall-clock budget per file across all attempts and backoffs.
    per_file_deadline_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.per_file_deadline_s <= 0:
            raise ValueError("per_file_deadline_s must be positive")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay_s * (self.multiplier ** (attempt - 1)), self.max_delay_s)
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


@dataclass
class RetryOutcome:
    """What one retried call actually did (fed into the fault timeline)."""

    attempts: int = 1
    backoff_s: float = 0.0

    @property
    def retries(self) -> int:
        return self.attempts - 1


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    path: str,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> tuple[T, RetryOutcome]:
    """Call ``fn()`` under ``policy``; returns ``(result, RetryOutcome)``.

    Raises :class:`RetryExhausted` (with the last error chained) once the
    attempt budget or the per-file deadline is spent; non-transient errors
    propagate immediately.
    """
    rng = random.Random(zlib.crc32(path.encode("utf-8")))
    outcome = RetryOutcome(attempts=0)
    started = clock()
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        outcome.attempts = attempt
        try:
            return fn(), outcome
        except BaseException as exc:  # noqa: BLE001 - classified below
            if not is_transient(exc):
                raise
            last = exc
        elapsed = clock() - started
        if attempt >= policy.max_attempts or elapsed >= policy.per_file_deadline_s:
            break
        delay = policy.delay_for(attempt, rng)
        if elapsed + delay > policy.per_file_deadline_s:
            delay = max(0.0, policy.per_file_deadline_s - elapsed)
        if delay:
            sleep(delay)
            outcome.backoff_s += delay
    assert last is not None
    raise RetryExhausted(path, outcome.attempts, clock() - started, last) from last
