"""The ``on_error`` policy: what a build does with a permanently bad file.

Three policies, configured on :class:`~repro.core.config.PlatformConfig`
(and ``repro build --on-error``):

- ``strict`` (default) — abort the build; the error propagates with the
  offending path attached.  Right for reproduction runs where a corrupt
  input means the experiment is invalid.
- ``skip`` — record the file and its reason, index nothing from it, and
  keep going.  Right for dirty web crawls where losing one container out
  of 1,492 beats losing the build.
- ``quarantine`` — like ``skip``, but additionally move the container
  into a ``quarantine/`` directory next to the collection (with a logged
  reason), so operators can triage bad inputs without re-scanning a
  terabyte.

Whatever the policy, nothing is ever *silently* dropped: every decision
lands in :class:`SkippedFile` records surfaced on ``EngineResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import runtime as obs

__all__ = ["ON_ERROR_POLICIES", "SkippedFile", "GpuFailover", "RobustnessReport"]

ON_ERROR_POLICIES = ("strict", "skip", "quarantine")


@dataclass(frozen=True)
class SkippedFile:
    """One container file excluded from the build, and why."""

    file_index: int
    path: str
    reason: str
    action: str = "skip"  # "skip" | "quarantine" | "sampling-skip"
    quarantined_to: str | None = None


@dataclass(frozen=True)
class GpuFailover:
    """A GPU indexer that died mid-build and fell back to the CPU."""

    gpu_ordinal: int
    indexer_id: int
    file_index: int
    collections: int        # trie collections reassigned
    tokens_before_failure: int

    def describe(self) -> str:
        return (
            f"GPU {self.gpu_ordinal} (indexer {self.indexer_id}) failed before "
            f"file {self.file_index}; {self.collections} trie collections "
            f"reassigned to a CPU fallback indexer "
            f"({self.tokens_before_failure:,} tokens already indexed)"
        )


@dataclass
class RobustnessReport:
    """Fault-handling summary of one build, surfaced on ``EngineResult``."""

    on_error: str = "strict"
    retries: int = 0
    retry_backoff_s: float = 0.0
    skipped: list[SkippedFile] = field(default_factory=list)
    gpu_failovers: list[GpuFailover] = field(default_factory=list)
    resumed_runs: int = 0  # runs recovered from the manifest, not rebuilt

    @property
    def skipped_count(self) -> int:
        return len(self.skipped)

    @property
    def quarantined_count(self) -> int:
        return sum(1 for s in self.skipped if s.action == "quarantine")

    def merge_outcome(self, retries: int, backoff_s: float) -> None:
        self.retries += retries
        self.retry_backoff_s += backoff_s
        if retries:
            # Backoff seconds come from the policy's schedule, not the
            # clock, so both counters stay seed-deterministic.
            obs.count("robustness.retries", retries)
            obs.count("robustness.backoff_seconds", backoff_s)
