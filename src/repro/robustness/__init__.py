"""Fault tolerance for long builds over dirty data.

Submodules (see docs/ROBUSTNESS.md for the full failure model):

- :mod:`~repro.robustness.errors` — the exception taxonomy (transient /
  permanent / fatal);
- :mod:`~repro.robustness.faults` — deterministic, seedable fault
  injection hooked into the container read path;
- :mod:`~repro.robustness.retry` — exponential backoff with jitter, cap
  and per-file deadline;
- :mod:`~repro.robustness.policy` — the ``on_error`` policy records
  (skip / quarantine / GPU failover);
- :mod:`~repro.robustness.checkpoint` — the durable build manifest and
  the run-boundary resume snapshot;
- :mod:`~repro.robustness.verify` — offline index verification
  (checksums + cross-file invariants), imported lazily because it pulls
  in the reader stack.
"""

from repro.robustness.errors import (
    ChecksumError,
    FatalFault,
    RetryExhausted,
    TransientReadError,
)
from repro.robustness.policy import GpuFailover, RobustnessReport, SkippedFile
from repro.robustness.retry import RetryPolicy

__all__ = [
    "ChecksumError",
    "FatalFault",
    "RetryExhausted",
    "TransientReadError",
    "GpuFailover",
    "RobustnessReport",
    "SkippedFile",
    "RetryPolicy",
]
