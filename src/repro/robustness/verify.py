"""Offline index verification: checksums plus cross-file invariants.

``repro verify <index_dir>`` (and tests) use :func:`verify_index` to answer
"is this index internally consistent?" without trusting any single
artifact.  Checks, in order:

1. ``runs.map`` parses and its ``#crc`` line matches the body;
2. every referenced run file exists, its trailing CRC32 matches, and its
   header agrees with the map entry (run id, min/max doc IDs);
3. run document ranges are sorted and non-overlapping (splicing partial
   lists by run order assumes this);
4. ``doctable.tsv`` (when present) passes its ``#crc`` line and covers
   every document ID the runs claim to hold;
5. ``dictionary.bin`` (when present) passes its CRC footer and parses;
6. every term id appearing in a run header is reachable from the
   dictionary (postings that no query could ever retrieve indicate a
   damaged dictionary or a foreign run file);
7. the telemetry artifacts (when present): ``run.metrics.json`` must
   satisfy the :mod:`repro.obs.schema` validator and ``trace.json`` must
   be a loadable Chrome trace — CI fails builds on either.

Each finding is an :class:`Issue`; :func:`verify_index` stops at the first
one unless ``keep_going=True``.  This module is imported lazily (not from
``repro.robustness.__init__``) because it pulls in the reader stack.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.postings.doctable import DOCTABLE_FILENAME, DocTable
from repro.postings.output import (
    MAP_FILENAME,
    DocRangeMap,
    read_run_header,
    verify_run_bytes,
)

__all__ = ["Issue", "VerifyResult", "verify_index"]

DICT_FILENAME = "dictionary.bin"


@dataclass(frozen=True)
class Issue:
    """One inconsistency found in an index directory."""

    check: str  #: machine-readable check name, e.g. ``run-crc``
    path: str  #: artifact the issue was found in
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.path}: {self.detail}"


@dataclass
class VerifyResult:
    """Outcome of :func:`verify_index`."""

    issues: list[Issue]
    runs_checked: int = 0
    docs_checked: int = 0
    terms_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues


def verify_index(index_dir: str, keep_going: bool = False) -> VerifyResult:
    """Check every artifact of an index directory against the others.

    With ``keep_going=False`` (the CLI default) verification stops at the
    first inconsistency; ``keep_going=True`` collects them all, skipping
    only checks whose inputs are already known bad.
    """
    result = VerifyResult(issues=[])

    def found(check: str, path: str, detail: str) -> bool:
        """Record an issue; returns True when verification should stop."""
        result.issues.append(Issue(check, os.path.basename(path), detail))
        return not keep_going

    map_path = os.path.join(index_dir, MAP_FILENAME)
    if not os.path.exists(map_path):
        found("map-missing", map_path, "runs.map not found — not an index directory?")
        return result
    try:
        range_map = DocRangeMap.load(index_dir)
    except FileNotFoundError as exc:
        found("run-missing", str(exc.filename or map_path),
              "referenced by runs.map but absent")
        return result
    except ValueError as exc:  # ChecksumError is a ValueError
        found("map-crc", map_path, str(exc))
        return result  # nothing else is checkable without the map

    # Per-run checks: CRC footer, header agreement with the map entry.
    run_term_ids: set[int] = set()
    max_doc_seen: int | None = None
    for run in range_map.runs:
        result.runs_checked += 1
        if not os.path.exists(run.path):
            if found("run-missing", run.path, "referenced by runs.map but absent"):
                return result
            continue
        with open(run.path, "rb") as fh:
            data = fh.read()
        try:
            verify_run_bytes(run.path, data)
        except ValueError as exc:
            if found("run-crc", run.path, str(exc)):
                return result
            continue  # header fields untrustworthy past this point
        try:
            run_id, _, min_doc, max_doc, table, _ = read_run_header(data)
        except (ValueError, EOFError, IndexError, UnicodeDecodeError) as exc:
            if found("run-header", run.path, f"unparseable header: {exc}"):
                return result
            continue
        if run_id != run.run_id:
            if found(
                "run-id",
                run.path,
                f"header says run {run_id}, runs.map says {run.run_id}",
            ):
                return result
        if (min_doc, max_doc) != (run.min_doc, run.max_doc):
            if found(
                "run-range",
                run.path,
                f"header range {min_doc}..{max_doc} != map range "
                f"{run.min_doc}..{run.max_doc}",
            ):
                return result
        run_term_ids.update(table)
        if run.min_doc is not None and run.max_doc is not None:
            if max_doc_seen is not None and run.min_doc <= max_doc_seen:
                if found(
                    "run-overlap",
                    run.path,
                    f"doc range starts at {run.min_doc} but a prior run "
                    f"already covers up to {max_doc_seen}",
                ):
                    return result
            max_doc_seen = (
                run.max_doc if max_doc_seen is None else max(max_doc_seen, run.max_doc)
            )

    # Doc table: CRC plus coverage of every doc ID the runs claim.
    doctable_path = os.path.join(index_dir, DOCTABLE_FILENAME)
    if os.path.exists(doctable_path):
        try:
            doc_table = DocTable.load(index_dir)
        except ValueError as exc:
            if found("doctable-crc", doctable_path, str(exc)):
                return result
            doc_table = None
        if doc_table is not None:
            result.docs_checked = len(doc_table)
            if max_doc_seen is not None and max_doc_seen >= len(doc_table):
                if found(
                    "doctable-range",
                    doctable_path,
                    f"runs reference doc {max_doc_seen} but the table has "
                    f"only {len(doc_table)} rows",
                ):
                    return result

    # Dictionary: CRC + parse, then term-id reachability for the runs.
    dict_path = os.path.join(index_dir, DICT_FILENAME)
    if os.path.exists(dict_path):
        from repro.dictionary.serialize import load_dictionary

        try:
            terms = load_dictionary(dict_path)
        except (ValueError, EOFError, IndexError, UnicodeDecodeError) as exc:
            if found("dictionary-crc", dict_path, str(exc)):
                return result
            terms = None
        if terms is not None:
            result.terms_checked = len(terms)
            known_ids = set(terms.values())
            orphans = run_term_ids - known_ids
            if orphans:
                sample = sorted(orphans)[:5]
                if found(
                    "orphan-terms",
                    dict_path,
                    f"{len(orphans)} term id(s) in run files are missing from "
                    f"the dictionary (e.g. {sample})",
                ):
                    return result

    # Telemetry artifacts: schema-validate instead of trusting them.
    from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, validate_metrics

    metrics_path = os.path.join(index_dir, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        try:
            with open(metrics_path, "r", encoding="utf-8") as fh:
                payload = fh.read()
            problems = validate_metrics(json.loads(payload))
        except ValueError as exc:
            problems = [f"unparseable JSON: {exc}"]
        for problem in problems:
            if found("metrics-schema", metrics_path, problem):
                return result

    trace_path = os.path.join(index_dir, TRACE_FILENAME)
    if os.path.exists(trace_path):
        from repro.obs.trace import load_chrome_trace

        try:
            load_chrome_trace(trace_path)
        except ValueError as exc:
            if found("trace-format", trace_path, str(exc)):
                return result

    return result
