"""Worker supervision for the multiprocess execution backend.

:mod:`repro.core.mp_backend` owns the *mechanism* — processes, rings,
state snapshots, journal replay.  This module owns the *policy* and the
*bookkeeping*: when is a worker considered crashed or hung, how many
restarts does it get, when does a sub-batch count as poison, and what
does the build report about all of it.

Failure taxonomy (docs/ROBUSTNESS.md, "Process supervision"):

``crash``
    The worker process exited — nonzero exit code, ``SIGKILL``, OOM.
    Detected by the engine observing ``Process.is_alive() == False``
    while replies are still owed.
``stall``
    The process is alive but its heartbeat counter (a plain u64 in the
    ring header, bumped every worker loop iteration and every transport
    poll) stopped advancing for longer than ``heartbeat_timeout_s``.
    The supervisor kills it and treats it like a crash — by the time a
    heartbeat is this stale the worker is wedged in user code, and
    requeue-after-kill is the only move that preserves the build.
``poison``
    The same task tag killed ``poison_threshold`` worker incarnations.
    Restarting again would loop forever, so the slot degrades instead.

Recovery ladder, in order:

1. **Restart + requeue** — up to ``max_restarts`` per worker, paced by
   the PR 1 retry/backoff policy.  The engine replays the slot's journal
   (every sub-batch since the last run boundary) into a fresh process
   seeded with the last state snapshot; side effects stay at-most-once
   because all durable writes (run files, manifest, checkpoint) happen
   on the engine, never in workers.
2. **Degrade** — restart budget exhausted or poison detected: the slot
   leaves the process fleet and runs inline on the engine thread (the
   threaded/serial execution path) for the rest of the build.  The
   build completes, byte-identical; only wall-clock parallelism is lost.

Every decision is counted in the deterministic metrics registry
(``supervisor.restarts``, ``supervisor.requeued``,
``supervisor.heartbeat_misses``, ``supervisor.degraded``,
``supervisor.poisoned``) and mirrored as trace instants, so
``repro stats`` / ``repro verify`` can surface what happened after the
fact.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.obs import runtime as obs
from repro.robustness.retry import RetryPolicy

__all__ = [
    "SupervisorPolicy",
    "Supervisor",
    "SupervisorReport",
    "WorkerFailure",
]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the multiprocess backend's supervision layer."""

    #: Restarts allowed per worker slot before it degrades to inline
    #: execution.  The budget is per-slot, not global: one flaky indexer
    #: should not spend the parsers' budget.
    max_restarts: int = 2
    #: Heartbeat silence after which a live process counts as hung.
    heartbeat_timeout_s: float = 10.0
    #: How many worker incarnations one task tag may kill before the
    #: task is declared poison and the slot degrades.
    poison_threshold: int = 2
    #: How long the engine waits on a ring before running its passive
    #: supervision checks (liveness, heartbeat age).  Small enough that
    #: a crash is noticed promptly; large enough to stay off the CPU.
    supervise_interval_s: float = 0.05
    #: Backoff between worker restarts — reuses the PR 1 retry policy
    #: (deterministic jitter, capped exponential).
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3, base_delay_s=0.01)
    )
    #: Byte capacity of each task/result ring.
    ring_capacity_bytes: int = 1 << 20
    #: ``multiprocessing`` start method; ``None`` picks ``fork`` where
    #: available (cheap, inherits the warmed interpreter) and ``spawn``
    #: elsewhere.  The RPR110 lint rule keeps the worker entry points
    #: spawn-safe either way.
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if self.ring_capacity_bytes < 4096:
            raise ValueError("ring_capacity_bytes must be >= 4096")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {self.start_method!r}")


@dataclass
class WorkerFailure:
    """One detected worker failure, for the build report."""

    worker: str          # slot key, e.g. "cpu-0", "parser-1"
    kind: str            # "crash" | "stall"
    incarnation: int
    detail: str = ""
    task_tag: str | None = None
    action: str = ""     # "restart" | "degrade" | "poison"


@dataclass
class SupervisorReport:
    """What supervision did during one build (returned on EngineResult)."""

    workers: int = 0
    restarts: int = 0
    requeued: int = 0
    heartbeat_misses: int = 0
    degraded: int = 0
    poisoned: int = 0
    failures: list[WorkerFailure] = field(default_factory=list)
    degraded_slots: list[str] = field(default_factory=list)
    poisoned_tasks: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures


class Supervisor:
    """Policy decisions + counters for one build's worker fleet.

    Engine-thread only: the multiprocess backend supervises *passively*,
    running these checks inside its blocking ring waits, so there is no
    monitor thread and no cross-thread state to lock.
    """

    def __init__(self, policy: SupervisorPolicy) -> None:
        self.policy = policy
        self.report = SupervisorReport()
        self._restarts_by_worker: dict[str, int] = {}
        self._task_crashes: dict[str, int] = {}

    # -- decisions ------------------------------------------------------ #

    def allow_restart(self, worker: str) -> bool:
        return self._restarts_by_worker.get(worker, 0) < self.policy.max_restarts

    def restart_delay_s(self, worker: str) -> float:
        """Deterministic backoff before the next restart of ``worker``.

        Seeded from (worker, restart ordinal), never the wall clock, so a
        rerun of the same fault plan paces restarts identically.
        """
        nth = self._restarts_by_worker.get(worker, 0)
        rng = random.Random(zlib.crc32(worker.encode("utf-8")) ^ nth)
        return self.policy.restart_backoff.delay_for(nth + 1, rng)

    def note_task_crash(self, task_tag: str) -> bool:
        """Record that ``task_tag`` was in flight when a worker died.

        Returns ``True`` once the tag crosses the poison threshold.
        """
        n = self._task_crashes.get(task_tag, 0) + 1
        self._task_crashes[task_tag] = n
        return n >= self.policy.poison_threshold

    # -- event recording ------------------------------------------------ #

    def _instant(self, name: str, **tags: object) -> None:
        t = obs.current()
        if t is not None:
            t.tracer.instant(name, cat="supervisor", **tags)

    def record_failure(self, failure: WorkerFailure) -> None:
        self.report.failures.append(failure)
        if failure.kind == "stall":
            self.report.heartbeat_misses += 1
            obs.count("supervisor.heartbeat_misses")
        self._instant(
            f"supervisor.{failure.kind}",
            worker=failure.worker,
            incarnation=failure.incarnation,
            action=failure.action,
        )

    def record_restart(self, worker: str, requeued: int) -> None:
        self._restarts_by_worker[worker] = self._restarts_by_worker.get(worker, 0) + 1
        self.report.restarts += 1
        self.report.requeued += requeued
        obs.count("supervisor.restarts")
        if requeued:
            obs.count("supervisor.requeued", requeued)
        self._instant("supervisor.restart", worker=worker, requeued=requeued)

    def record_degraded(self, worker: str, requeued: int = 0) -> None:
        self.report.degraded += 1
        self.report.requeued += requeued
        self.report.degraded_slots.append(worker)
        obs.count("supervisor.degraded")
        if requeued:
            obs.count("supervisor.requeued", requeued)
        self._instant("supervisor.degraded", worker=worker)

    def record_poisoned(self, task_tag: str) -> None:
        self.report.poisoned += 1
        self.report.poisoned_tasks.append(task_tag)
        obs.count("supervisor.poisoned")
        self._instant("supervisor.poison", task=task_tag)
