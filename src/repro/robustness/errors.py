"""Exception taxonomy of the fault-tolerance subsystem.

The build path distinguishes three failure classes, because each calls
for a different response (docs/ROBUSTNESS.md):

- **transient** (:class:`TransientReadError` and other ``OSError``\\ s) —
  worth retrying with backoff; the storage layer may recover;
- **permanent** (:class:`~repro.corpus.warc.CorruptContainerError`,
  :class:`ChecksumError`, :class:`RetryExhausted`) — retrying cannot
  help; the ``on_error`` policy decides between aborting, skipping, and
  quarantining;
- **fatal** (:class:`FatalFault`) — models a process crash in chaos
  tests; never caught by any policy, so the build dies exactly as a real
  ``kill -9`` would, leaving only the durable manifest behind.
"""

from __future__ import annotations

__all__ = [
    "ChecksumError",
    "TransientReadError",
    "RetryExhausted",
    "FatalFault",
]


class ChecksumError(ValueError):
    """An artifact's embedded CRC32 does not match its content."""

    def __init__(self, path: str, expected: int, actual: int) -> None:
        super().__init__(
            f"checksum mismatch in {path}: stored {expected:#010x}, "
            f"computed {actual:#010x} — file is corrupt or truncated"
        )
        self.path = path
        self.expected = expected
        self.actual = actual

    def __reduce__(self) -> "tuple[object, ...]":
        # Rebuild from the real fields, not the formatted ``args``, so
        # the error survives the worker→engine process boundary.
        return (type(self), (self.path, self.expected, self.actual))


class TransientReadError(OSError):
    """An injected (or real) transient I/O failure; retrying may succeed."""

    def __init__(self, path: str, message: str = "transient read error") -> None:
        super().__init__(f"{message}: {path}")
        self.path = path
        self.message = message

    def __reduce__(self) -> "tuple[object, ...]":
        return (type(self), (self.path, self.message))


class RetryExhausted(RuntimeError):
    """All retry attempts (or the per-file deadline) were consumed.

    The original error is chained as ``__cause__``; the ``on_error``
    policy treats this as a permanent failure.
    """

    def __init__(self, path: str, attempts: int, elapsed_s: float, last_error: BaseException) -> None:
        super().__init__(
            f"giving up on {path} after {attempts} attempt(s) in "
            f"{elapsed_s:.3f}s: {last_error!r}"
        )
        self.path = path
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.last_error = last_error

    def __reduce__(self) -> "tuple[object, ...]":
        return (
            type(self),
            (self.path, self.attempts, self.elapsed_s, self.last_error),
        )


class FatalFault(RuntimeError):
    """An injected crash: bypasses retry and every ``on_error`` policy."""

    def __init__(self, path: str) -> None:
        super().__init__(f"injected fatal fault while reading {path}")
        self.path = path

    def __reduce__(self) -> "tuple[object, ...]":
        return (type(self), (self.path,))
