"""Zipf vocabulary construction and token sampling.

Section III.E's load balancing rests on Zipf's law [12]: "a few common
terms dominate the entries" of popular trie collections while unpopular
collections hold the long tail of rare terms with nearly equal (tiny)
frequencies.  The synthetic corpus must reproduce that skew or the paper's
CPU/GPU split loses its meaning, so token sampling here is rank-frequency
Zipf with exponent ``s`` (≈1.0 for web text).

Vocabulary *shape* also matters for the dictionary experiments:

- average stemmed-term length ≈ 6.6 characters (the paper's ClueWeb09
  measurement that justifies the 3-character trie strip);
- English-like first-letter skew (many terms under 't', 's', 'c'; almost
  none under 'z'), so trie collections are unbalanced the way Table I
  anticipates ("many words with prefix 'the' and hardly any with 'zzz'");
- a sprinkle of pure numbers and special-character terms so trie
  categories 0–10 are populated.

Heaps' law (``V(n) = k·n^β``) extrapolates vocabulary growth for the
paper-scale workload model that drives Fig 11.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng

__all__ = ["ZipfVocabulary", "ZipfSampler", "heaps_vocabulary_size"]

# English-like first-letter frequencies (relative weights a..z).
_FIRST_LETTER_WEIGHTS = np.array(
    [
        11.7, 4.4, 5.2, 3.2, 2.8, 4.0, 1.6, 4.2, 7.3, 0.5, 0.9, 2.4, 3.8,
        2.3, 7.6, 4.3, 0.2, 2.8, 6.7, 16.0, 1.2, 0.8, 5.5, 0.1, 0.8, 0.3,
    ]
)
_LETTERS = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)
# Interior letters roughly follow overall English letter frequency.
_INNER_LETTER_WEIGHTS = np.array(
    [
        8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4,
        6.7, 7.5, 1.9, 0.095, 6.0, 6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
    ]
)
# A handful of non-ASCII letters for the "special" trie category.
_SPECIAL_CHARS = "éèçñöüá"


def heaps_vocabulary_size(tokens: float, k: float = 38.0, beta: float = 0.59) -> int:
    """Heaps-law estimate ``V = k · n^β`` of distinct terms in n tokens.

    Defaults are fit to the paper's Table III: ClueWeb09's 32.6G tokens ↔
    84.8M terms (β≈0.59, k≈38, with the Wikipedia.org segment contributing
    its own fresh pool on top — see the workload model).  Web crawls have
    fat vocabularies from typos, codes and markup junk.
    """
    if tokens <= 0:
        return 0
    return max(1, int(k * tokens**beta))


class ZipfVocabulary:
    """Deterministic synthetic vocabulary of distinct surface terms.

    Parameters
    ----------
    size:
        Number of distinct terms.
    seed:
        RNG seed; identical seeds give identical vocabularies.
    mean_length:
        Target mean term length (paper: 6.6 post-stemming; surface forms
        run slightly longer because stemming trims suffixes).
    number_fraction, special_fraction:
        Share of pure-number terms (trie categories 1–10) and of terms
        containing a non-ASCII character (category 0 or 11–36).
    """

    def __init__(
        self,
        size: int,
        seed: int = 0,
        mean_length: float = 7.2,
        number_fraction: float = 0.015,
        special_fraction: float = 0.005,
    ) -> None:
        if size < 1:
            raise ValueError(f"vocabulary size must be >= 1, got {size}")
        self.size = size
        self.seed = seed
        rng = make_rng(seed)
        self.terms = self._build(rng, size, mean_length, number_fraction, special_fraction)

    @staticmethod
    def _build(
        rng: np.random.Generator,
        size: int,
        mean_length: float,
        number_fraction: float,
        special_fraction: float,
    ) -> list[str]:
        first_p = _FIRST_LETTER_WEIGHTS / _FIRST_LETTER_WEIGHTS.sum()
        inner_p = _INNER_LETTER_WEIGHTS / _INNER_LETTER_WEIGHTS.sum()
        terms: list[str] = []
        seen: set[str] = set()
        # Lognormal lengths concentrated near the mean, clipped to [2, 16].
        sigma = 0.35
        mu = float(np.log(mean_length)) - sigma**2 / 2

        batch = max(1024, size // 8)
        while len(terms) < size:
            lengths = np.clip(
                np.round(rng.lognormal(mu, sigma, batch)).astype(int), 2, 16
            )
            firsts = rng.choice(_LETTERS, size=batch, p=first_p)
            kinds = rng.random(batch)
            for i in range(batch):
                if len(terms) >= size:
                    break
                n = int(lengths[i])
                if kinds[i] < number_fraction:
                    digits = rng.integers(0, 10, size=max(1, n - 2))
                    word = "".join(str(d) for d in digits)
                elif kinds[i] < number_fraction + special_fraction:
                    inner = rng.choice(_LETTERS, size=max(1, n - 2), p=inner_p)
                    word = chr(firsts[i]) + bytes(inner).decode("ascii")
                    pos = int(rng.integers(0, len(word)))
                    ch = _SPECIAL_CHARS[int(rng.integers(0, len(_SPECIAL_CHARS)))]
                    word = word[:pos] + ch + word[pos + 1 :]
                else:
                    inner = rng.choice(_LETTERS, size=n - 1, p=inner_p)
                    word = chr(firsts[i]) + bytes(inner).decode("ascii")
                if word not in seen:
                    seen.add(word)
                    terms.append(word)
        return terms

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, rank: int) -> str:
        """Term at Zipf rank ``rank`` (0 = most frequent)."""
        return self.terms[rank]


class ZipfSampler:
    """Vectorized rank-frequency Zipf sampler over a vocabulary.

    ``P(rank r) ∝ 1 / (r+1)^s``.  Sampling draws uniforms and inverts the
    cumulative distribution with :func:`numpy.searchsorted` — O(log V) per
    token and fully vectorized, following the HPC-Python guide's
    "vectorize the hot loop" rule.
    """

    def __init__(self, vocabulary: ZipfVocabulary, s: float = 1.0, seed: int = 1) -> None:
        if s < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {s}")
        self.vocabulary = vocabulary
        self.s = s
        self._rng = make_rng(seed)
        weights = 1.0 / np.arange(1, len(vocabulary) + 1, dtype=np.float64) ** s
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample_ranks(self, n: int) -> np.ndarray:
        """Draw ``n`` Zipf ranks (int64 array)."""
        u = self._rng.random(n)
        return np.searchsorted(self._cdf, u, side="left")

    def sample_terms(self, n: int) -> list[str]:
        """Draw ``n`` term strings."""
        terms = self.vocabulary.terms
        return [terms[r] for r in self.sample_ranks(n)]

    def expected_frequency(self, rank: int) -> float:
        """Expected probability of the term at ``rank``."""
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)
