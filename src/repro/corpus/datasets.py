"""Dataset presets: mini stand-ins for the paper's three collections.

Table III of the paper:

====================  ============  ===========  ============
Statistic             ClueWeb09 #1  Wikipedia    LoC Congress
====================  ============  ===========  ============
Compressed size       230 GB        29 GB        96 GB
Uncompressed size     1,422 GB      79 GB        507 GB
Documents             50,220,423    16,618,497   29,177,074
Distinct terms        84,799,475    9,404,723    7,457,742
Tokens                32.64 G       9.38 G       16.87 G
====================  ============  ===========  ============

The mini presets reproduce each collection's *profile*, scaled to laptop
size: ClueWeb is HTML-heavy (low tokens/byte, enormous vocabulary) and
ends with a Wikipedia.org segment over the last ~20% of files (the Fig 11
cliff); Wikipedia01-07 is pre-cleaned pure text ("the HTML tags were
removed, and the remainder is just pure text") with high tokens/byte;
Congress sits between.  ``PAPER_COLLECTION_STATS`` carries the published
numbers so report benchmarks can print paper-vs-ours side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.collection import Collection
from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection

__all__ = [
    "PaperCollectionStats",
    "PAPER_COLLECTION_STATS",
    "clueweb09_mini",
    "wikipedia_mini",
    "congress_mini",
]

_GB = 1024**3


@dataclass(frozen=True)
class PaperCollectionStats:
    """Published Table III numbers for one collection."""

    name: str
    compressed_bytes: int
    uncompressed_bytes: int
    num_files: int
    num_docs: int
    num_terms: int
    num_tokens: int
    crawl_time: str


PAPER_COLLECTION_STATS: dict[str, PaperCollectionStats] = {
    "clueweb09": PaperCollectionStats(
        name="ClueWeb09 1st Eng Seg",
        compressed_bytes=230 * _GB,
        uncompressed_bytes=1422 * _GB,
        num_files=1492,
        num_docs=50_220_423,
        num_terms=84_799_475,
        num_tokens=32_644_508_255,
        crawl_time="01/09 to 02/09",
    ),
    "wikipedia": PaperCollectionStats(
        name="Wikipedia 01-07",
        compressed_bytes=29 * _GB,
        uncompressed_bytes=79 * _GB,
        num_files=84,
        num_docs=16_618_497,
        num_terms=9_404_723,
        num_tokens=9_375_229_726,
        crawl_time="02/01 to 12/07",
    ),
    "congress": PaperCollectionStats(
        name="Library of Congress",
        compressed_bytes=96 * _GB,
        uncompressed_bytes=507 * _GB,
        num_files=530,
        num_docs=29_177_074,
        num_terms=7_457_742,
        num_tokens=16_865_180_093,
        crawl_time="05/04 to 09/05",
    ),
}


def _scaled(n: int, scale: float) -> int:
    return max(1, round(n * scale))


def clueweb09_mini(root_dir: str, scale: float = 1.0, seed: int = 9) -> Collection:
    """Web-crawl profile with a trailing Wikipedia.org segment (~20%).

    At ``scale=1.0``: 25 files ≈ a few hundred KB compressed each,
    mirroring ClueWeb's 1,492-file × 160MB layout at 1:60-ish linear scale.
    """
    spec = CollectionSpec(
        name="clueweb09_mini",
        seed=seed,
        segments=(
            SegmentSpec(
                name="web",
                num_files=_scaled(20, scale),
                docs_per_file=30,
                tokens_per_doc_mean=320,
                vocab_size=60_000,
                zipf_s=1.0,
                html=True,
                mean_term_length=7.2,
            ),
            # Files 1,200–1,492 of the real collection: Wikipedia.org pages
            # with "a totally different behavior" — fresh vocabulary and a
            # different document shape.
            SegmentSpec(
                name="wikipedia.org",
                num_files=_scaled(5, scale),
                docs_per_file=45,
                tokens_per_doc_mean=260,
                vocab_size=35_000,
                zipf_s=0.9,
                html=True,
                mean_term_length=7.6,
            ),
        ),
    )
    return generate_collection(spec, root_dir)


def wikipedia_mini(root_dir: str, scale: float = 1.0, seed: int = 10) -> Collection:
    """Pre-cleaned pure-text profile (no HTML, high tokens/byte)."""
    spec = CollectionSpec(
        name="wikipedia_mini",
        seed=seed,
        segments=(
            SegmentSpec(
                name="articles",
                num_files=_scaled(8, scale),
                docs_per_file=30,
                tokens_per_doc_mean=480,
                vocab_size=25_000,
                zipf_s=1.05,
                html=False,
                stopword_rate=0.40,
                mean_term_length=7.0,
            ),
        ),
    )
    return generate_collection(spec, root_dir)


def congress_mini(root_dir: str, scale: float = 1.0, seed: int = 11) -> Collection:
    """News/government crawl profile: HTML but smaller vocabulary."""
    spec = CollectionSpec(
        name="congress_mini",
        seed=seed,
        segments=(
            SegmentSpec(
                name="weekly-snapshots",
                num_files=_scaled(12, scale),
                docs_per_file=35,
                tokens_per_doc_mean=400,
                vocab_size=30_000,
                zipf_s=1.1,
                html=True,
                mean_term_length=6.9,
            ),
        ),
    )
    return generate_collection(spec, root_dir)
