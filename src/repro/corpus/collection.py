"""On-disk collection handle and Table III statistics.

:class:`Collection` wraps a directory of packed container files plus a
manifest; :func:`collection_statistics` computes the paper's Table III rows
(compressed/uncompressed size, documents, distinct terms, tokens) by
actually parsing the collection — terms are counted *post* stemming and
stop-word removal, matching how the paper's numbers are defined.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field

__all__ = [
    "Collection",
    "CollectionStats",
    "collection_statistics",
    "QUARANTINE_DIRNAME",
    "QUARANTINE_LOG",
]

_MANIFEST = "manifest.tsv"
QUARANTINE_DIRNAME = "quarantine"
QUARANTINE_LOG = "quarantine.log"


@dataclass
class Collection:
    """A generated (or loaded) document collection on disk."""

    name: str
    directory: str
    files: list[str]
    file_segments: list[str] = field(default_factory=list)
    compressed_bytes: int = 0
    uncompressed_bytes: int = 0
    num_docs: int = 0
    seed: int = 0
    #: Documents dropped by an ``on_error="skip"`` ingest (reasons).
    ingest_skipped: list[str] = field(default_factory=list)

    @property
    def num_files(self) -> int:
        return len(self.files)

    def segment_of(self, file_index: int) -> str:
        """Segment name of the i-th file ('' when unknown)."""
        if file_index < len(self.file_segments):
            return self.file_segments[file_index]
        return ""

    # ------------------------------------------------------------------ #
    # Quarantine (the ``on_error=quarantine`` build policy)
    # ------------------------------------------------------------------ #

    def quarantine_file(
        self, file_index: int, reason: str, quarantine_dir: str | None = None
    ) -> str:
        """Move a corrupt container aside and log why.

        The file lands in ``<quarantine_dir>/<basename>`` (default:
        ``quarantine/`` inside the collection directory) and a line is
        appended to ``quarantine.log`` there — enough for an operator to
        triage bad inputs without re-reading the collection.  The
        in-memory file list keeps its slot (file indices must stay stable
        for the build's run accounting); the path simply no longer exists
        for future loads.  Returns the destination path.
        """
        src = self.files[file_index]
        dest_dir = quarantine_dir or os.path.join(self.directory, QUARANTINE_DIRNAME)
        os.makedirs(dest_dir, exist_ok=True)
        dest = os.path.join(dest_dir, os.path.basename(src))
        if os.path.exists(src):
            shutil.move(src, dest)
        with open(os.path.join(dest_dir, QUARANTINE_LOG), "a", encoding="utf-8") as fh:
            fh.write(f"{os.path.basename(src)}\t{reason}\n")
        return dest

    # ------------------------------------------------------------------ #
    # Manifest persistence
    # ------------------------------------------------------------------ #

    def save_manifest(self) -> str:
        """Write ``manifest.tsv`` so the collection reloads cheaply."""
        path = os.path.join(self.directory, _MANIFEST)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                f"#collection\t{self.name}\t{self.compressed_bytes}\t"
                f"{self.uncompressed_bytes}\t{self.num_docs}\t{self.seed}\n"
            )
            for i, fpath in enumerate(self.files):
                seg = self.segment_of(i)
                fh.write(f"{os.path.basename(fpath)}\t{seg}\n")
        return path

    @classmethod
    def load(cls, name: str, directory: str) -> "Collection":
        """Reload a collection from its manifest."""
        path = os.path.join(directory, _MANIFEST)
        with open(path, "r", encoding="utf-8") as fh:
            header = fh.readline().rstrip("\n").split("\t")
            _, mname, comp, uncomp, ndocs, seed = header
            files: list[str] = []
            segments: list[str] = []
            for line in fh:
                fname, seg = line.rstrip("\n").split("\t")
                files.append(os.path.join(directory, fname))
                segments.append(seg)
        return cls(
            name=mname,
            directory=directory,
            files=files,
            file_segments=segments,
            compressed_bytes=int(comp),
            uncompressed_bytes=int(uncomp),
            num_docs=int(ndocs),
            seed=int(seed),
        )


@dataclass
class CollectionStats:
    """Table III row: the paper's per-collection statistics."""

    name: str
    compressed_bytes: int
    uncompressed_bytes: int
    num_docs: int
    num_terms: int
    num_tokens: int

    @property
    def tokens_per_doc(self) -> float:
        return self.num_tokens / self.num_docs if self.num_docs else 0.0

    @property
    def compression_ratio(self) -> float:
        if not self.compressed_bytes:
            return 0.0
        return self.uncompressed_bytes / self.compressed_bytes


def collection_statistics(collection: Collection, strip_html: bool = True) -> CollectionStats:
    """Parse a collection end-to-end and compute its Table III row.

    Tokens are counted after stop-word removal and terms are distinct
    stemmed forms — the definitions behind the paper's 32.6G tokens /
    84.8M terms for ClueWeb09.
    """
    from repro.parsing.parser import Parser

    parser = Parser(parser_id=0, strip_html=strip_html)
    terms: set[tuple[int, bytes]] = set()
    tokens = 0
    docs = 0
    for seq, path in enumerate(collection.files):
        parsed = parser.parse_file(path, sequence=seq)
        docs += parsed.batch.num_docs
        tokens += parsed.batch.total_tokens
        if parsed.batch.regrouped:
            for cidx, streams in parsed.batch.collections.items():
                for _, suffixes in streams:
                    for suffix in suffixes:
                        terms.add((cidx, suffix))
        else:  # pragma: no cover - stats always use regrouping
            for _, toks in parsed.batch.ungrouped or []:
                terms.update(toks)
    return CollectionStats(
        name=collection.name,
        compressed_bytes=collection.compressed_bytes,
        uncompressed_bytes=collection.uncompressed_bytes,
        num_docs=docs,
        num_terms=len(terms),
        num_tokens=tokens,
    )
