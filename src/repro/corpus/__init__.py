"""Synthetic document collections (the evaluation-data substrate).

The paper evaluates on ClueWeb09 (1.4TB of web pages), Wikipedia01-07
(79GB of pre-cleaned text) and the Library-of-Congress Congressional crawl
(507GB) — none redistributable or laptop-sized.  This package builds
statistical stand-ins: Zipf-distributed vocabularies with English-like
shape, Heaps-law vocabulary growth, HTML markup for the web collections,
documents packed into gzip containers exactly like ClueWeb's distribution
files, plus the published Table III statistics for report comparison.

- :mod:`repro.corpus.zipf` — vocabulary construction and Zipf sampling.
- :mod:`repro.corpus.synthetic` — document and collection generators.
- :mod:`repro.corpus.collection` — on-disk collection handle + statistics.
- :mod:`repro.corpus.warc` — the packed container format.
- :mod:`repro.corpus.datasets` — the three mini presets and paper-scale
  statistical descriptions.
"""

from repro.corpus.collection import Collection, CollectionStats, collection_statistics
from repro.corpus.ingest import ingest_directory, ingest_documents, ingest_jsonl
from repro.corpus.datasets import (
    PAPER_COLLECTION_STATS,
    PaperCollectionStats,
    clueweb09_mini,
    congress_mini,
    wikipedia_mini,
)
from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection
from repro.corpus.warc import read_packed_file, write_packed_file
from repro.corpus.zipf import ZipfSampler, ZipfVocabulary, heaps_vocabulary_size

__all__ = [
    "ZipfVocabulary",
    "ZipfSampler",
    "heaps_vocabulary_size",
    "CollectionSpec",
    "SegmentSpec",
    "generate_collection",
    "Collection",
    "CollectionStats",
    "collection_statistics",
    "clueweb09_mini",
    "wikipedia_mini",
    "congress_mini",
    "ingest_documents",
    "ingest_directory",
    "ingest_jsonl",
    "PAPER_COLLECTION_STATS",
    "PaperCollectionStats",
    "read_packed_file",
    "write_packed_file",
]
