"""Packed collection files — a minimal WARC-like container.

ClueWeb09 ships as ~1,492 gzip-compressed files, each packing thousands of
web pages ("a typical file ... is about 160MB compressed and 1GB
uncompressed").  Our synthetic collections use the same shape: documents
are packed into container files which are gzip-compressed on disk, read
whole, and inflated in memory by the parsers — the exact I/O pattern whose
timing Section IV.A analyzes.

Container layout (uncompressed)::

    REPROWARC/1\n
    DOC <uri> <payload-byte-length>\n
    <payload bytes>\n
    DOC ...

The per-document byte offsets returned by :func:`read_packed_file` feed the
parser's ``<document ID, document location>`` table (Step 1 of Fig 3).

Every corruption the read path can encounter — truncated gzip member,
flipped bytes, a header that does not parse, payload that is not UTF-8 —
surfaces as one exception type, :class:`CorruptContainerError`, carrying
the file path and (where known) the byte offset of the damage, instead of
leaking raw stdlib exceptions with no filename.  The read path also
consults the fault-injection layer (:mod:`repro.robustness.faults`) so
chaos tests can exercise these failure modes on demand.
"""

from __future__ import annotations

import gzip
import os
import zlib
from dataclasses import dataclass
from typing import Iterable

from repro.robustness import faults

__all__ = [
    "PackedDocument",
    "CorruptContainerError",
    "write_packed_file",
    "read_packed_file",
    "MAGIC",
]

MAGIC = b"REPROWARC/1\n"


class CorruptContainerError(ValueError):
    """A container file's bytes cannot be decoded into documents.

    Permanent by definition: re-reading returns the same bytes, so the
    retry layer never retries it — the ``on_error`` policy decides.
    ``offset`` is the byte position of the damage in the *uncompressed*
    stream when known, else ``None`` (e.g. a gzip member that fails CRC).
    """

    def __init__(self, path: str, detail: str, offset: int | None = None) -> None:
        at = f" at byte {offset}" if offset is not None else ""
        super().__init__(f"corrupt container {path}{at}: {detail}")
        self.path = path
        self.offset = offset
        self.detail = detail

    def __reduce__(self) -> "tuple[object, ...]":
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``; rebuild from the real fields so
        # the error survives the worker→engine process boundary.
        return (type(self), (self.path, self.detail, self.offset))


@dataclass(frozen=True)
class PackedDocument:
    """One document as read from a container file."""

    uri: str
    text: str
    offset: int  # byte offset of the DOC header in the uncompressed stream


def write_packed_file(
    path: str,
    docs: Iterable[tuple[str, str]],
    compress: bool = True,
    compresslevel: int = 1,
) -> tuple[int, int]:
    """Write ``(uri, text)`` documents to a container file.

    Returns ``(compressed bytes on disk, uncompressed bytes)``.  With
    ``compress`` the file is gzip-wrapped (level 1: web-crawl distribution
    files favour speed, and it keeps the paper's ~6× compression ratio in
    the right regime for synthetic text).
    """
    body = bytearray(MAGIC)
    for uri, text in docs:
        payload = text.encode("utf-8")
        if "\n" in uri or " " in uri:
            raise ValueError(f"document URI may not contain spaces/newlines: {uri!r}")
        body.extend(f"DOC {uri} {len(payload)}\n".encode("ascii"))
        body.extend(payload)
        body.extend(b"\n")
    raw = bytes(body)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    if compress:
        with gzip.open(path, "wb", compresslevel=compresslevel) as fh:
            fh.write(raw)
    else:
        with open(path, "wb") as fh:
            fh.write(raw)
    return os.path.getsize(path), len(raw)


def _inflate(path: str) -> bytes:
    """Read a container file, transparently gunzipping.

    Transient I/O faults (real or injected) propagate as ``OSError`` for
    the retry layer; undecodable gzip streams become
    :class:`CorruptContainerError` so no raw ``zlib.error`` ever escapes
    without a filename.
    """
    injector = faults.active()
    if injector is not None:
        injector.before_read(path)
    with open(path, "rb") as fh:
        head = fh.read(2)
        fh.seek(0)
        data = fh.read()
    if injector is not None:
        data = injector.corrupt_raw(path, data)
        head = data[:2]
    if head == b"\x1f\x8b":
        try:
            data = gzip.decompress(data)
        except (gzip.BadGzipFile, EOFError, zlib.error) as exc:
            raise CorruptContainerError(path, f"bad gzip stream ({exc})") from exc
    if injector is not None:
        data = injector.corrupt_inflated(path, data)
    return data


def read_packed_file(path: str) -> list[PackedDocument]:
    """Read and parse a container file into documents."""
    data = _inflate(path)
    if not data.startswith(MAGIC):
        raise CorruptContainerError(path, "not a REPROWARC container", offset=0)
    docs: list[PackedDocument] = []
    pos = len(MAGIC)
    total = len(data)
    while pos < total:
        try:
            nl = data.index(b"\n", pos)
            header = data[pos:nl].decode("ascii")
            tag, uri, length_s = header.split(" ")
            if tag != "DOC":
                raise ValueError(f"bad header {header!r}")
            length = int(length_s)
            payload_start = nl + 1
            payload = data[payload_start : payload_start + length]
            if len(payload) != length:
                raise ValueError(
                    f"payload truncated ({len(payload)} of {length} bytes)"
                )
            text = payload.decode("utf-8")
        except CorruptContainerError:
            raise
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptContainerError(path, str(exc), offset=pos) from exc
        docs.append(PackedDocument(uri=uri, text=text, offset=pos))
        pos = payload_start + length + 1  # skip trailing newline
    return docs


def uncompressed_size(path: str) -> int:
    """Uncompressed byte size of a container file."""
    return len(_inflate(path))
