"""Ingest real user documents into indexable collections.

The synthetic generators exist to reproduce the paper's evaluation, but a
downstream adopter wants to index *their* data.  These helpers pack
arbitrary documents into the engine's container format:

- :func:`ingest_directory` — a directory tree of text/HTML files, one
  document per file;
- :func:`ingest_jsonl` — a JSON-lines file with one document object per
  line (``{"text": ...}`` plus optional ``"id"``);
- :func:`ingest_documents` — any iterable of ``(uri, text)`` pairs.

All three produce a normal :class:`~repro.corpus.collection.Collection`
(packed, optionally gzip-compressed container files + manifest) that
:class:`~repro.core.engine.IndexingEngine` consumes unchanged.

Real user data is dirty.  Errors always name the offending line number or
file path, and ``on_error="skip"`` (mirroring the build-side policy of
:mod:`repro.robustness.policy`) drops undecodable documents instead of
aborting — every drop is recorded on ``Collection.ingest_skipped``.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator

from repro.corpus.collection import Collection
from repro.corpus.warc import write_packed_file

__all__ = ["ingest_documents", "ingest_directory", "ingest_jsonl"]

#: File suffixes treated as documents by :func:`ingest_directory`.
_TEXT_SUFFIXES = (".txt", ".text", ".html", ".htm", ".md", ".xml")


def ingest_documents(
    docs: Iterable[tuple[str, str]],
    output_dir: str,
    name: str = "ingested",
    docs_per_file: int = 256,
    compress: bool = True,
) -> Collection:
    """Pack ``(uri, text)`` documents into a collection at ``output_dir``.

    Documents are packed ``docs_per_file`` at a time into container files
    — the unit the parsers read and the engine turns into runs.  URIs may
    not contain whitespace (they key the doc table); offending characters
    are percent-escaped.
    """
    if docs_per_file < 1:
        raise ValueError("docs_per_file must be >= 1")
    coll_dir = os.path.join(output_dir, name)
    os.makedirs(coll_dir, exist_ok=True)

    files: list[str] = []
    segments: list[str] = []
    compressed_total = 0
    uncompressed_total = 0
    num_docs = 0
    buffer: list[tuple[str, str]] = []
    file_index = 0

    def flush() -> None:
        nonlocal file_index, compressed_total, uncompressed_total, num_docs
        if not buffer:
            return
        suffix = ".warc.gz" if compress else ".warc"
        path = os.path.join(coll_dir, f"file_{file_index:05d}{suffix}")
        comp, uncomp = write_packed_file(path, buffer, compress=compress)
        files.append(path)
        segments.append("ingested")
        compressed_total += comp
        uncompressed_total += uncomp
        num_docs += len(buffer)
        buffer.clear()
        file_index += 1

    for uri, text in docs:
        safe_uri = uri.replace(" ", "%20").replace("\n", "%0A").replace("\t", "%09")
        buffer.append((safe_uri, text))
        if len(buffer) >= docs_per_file:
            flush()
    flush()

    if not files:
        raise ValueError("no documents to ingest")

    collection = Collection(
        name=name,
        directory=coll_dir,
        files=files,
        file_segments=segments,
        compressed_bytes=compressed_total,
        uncompressed_bytes=uncompressed_total,
        num_docs=num_docs,
    )
    collection.save_manifest()
    return collection


def _check_on_error(on_error: str) -> None:
    if on_error not in ("strict", "skip"):
        raise ValueError(f"on_error must be 'strict' or 'skip', got {on_error!r}")


def _walk_documents(
    src_dir: str,
    suffixes: tuple[str, ...],
    on_error: str,
    encoding_errors: str,
    skipped: list[str],
) -> Iterator[tuple[str, str]]:
    for root, _dirs, names in sorted(os.walk(src_dir)):
        for fname in sorted(names):
            if not fname.lower().endswith(suffixes):
                continue
            path = os.path.join(root, fname)
            try:
                with open(path, "r", encoding="utf-8", errors=encoding_errors) as fh:
                    text = fh.read()
            except (OSError, UnicodeDecodeError) as exc:
                if on_error == "skip":
                    skipped.append(f"{path}: {exc}")
                    continue
                raise ValueError(f"cannot read document {path}: {exc}") from exc
            yield f"file://{os.path.relpath(path, src_dir)}", text


def ingest_directory(
    src_dir: str,
    output_dir: str,
    name: str = "ingested",
    docs_per_file: int = 256,
    compress: bool = True,
    suffixes: tuple[str, ...] = _TEXT_SUFFIXES,
    on_error: str = "strict",
    encoding_errors: str = "replace",
) -> Collection:
    """One document per text/HTML file under ``src_dir`` (recursive).

    ``on_error="skip"`` drops unreadable/undecodable files (recorded on
    the returned collection's ``ingest_skipped``); ``encoding_errors``
    forwards to :func:`open` — pass ``"strict"`` to treat mojibake as an
    error instead of silently replacing it.
    """
    if not os.path.isdir(src_dir):
        raise NotADirectoryError(src_dir)
    _check_on_error(on_error)
    skipped: list[str] = []
    collection = ingest_documents(
        _walk_documents(src_dir, suffixes, on_error, encoding_errors, skipped),
        output_dir,
        name=name,
        docs_per_file=docs_per_file,
        compress=compress,
    )
    collection.ingest_skipped = skipped
    return collection


def ingest_jsonl(
    jsonl_path: str,
    output_dir: str,
    name: str = "ingested",
    text_field: str = "text",
    id_field: str = "id",
    docs_per_file: int = 256,
    compress: bool = True,
    on_error: str = "strict",
) -> Collection:
    """One document per JSON line; ``text_field`` holds the body.

    Malformed JSON and records missing ``text_field`` raise with the
    exact ``file:line`` location; ``on_error="skip"`` records and drops
    them instead.
    """
    _check_on_error(on_error)
    skipped: list[str] = []

    def docs() -> Iterator[tuple[str, str]]:
        with open(jsonl_path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                where = f"{jsonl_path}:{line_no + 1}"
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    if on_error == "skip":
                        skipped.append(f"{where}: invalid JSON ({exc})")
                        continue
                    raise ValueError(f"{where}: invalid JSON: {exc}") from exc
                if not isinstance(obj, dict) or text_field not in obj:
                    if on_error == "skip":
                        skipped.append(f"{where}: no {text_field!r} field")
                        continue
                    raise KeyError(f"{where}: record has no {text_field!r} field")
                uri = str(obj.get(id_field, f"jsonl://{line_no}"))
                yield uri, str(obj[text_field])

    collection = ingest_documents(
        docs(), output_dir, name=name, docs_per_file=docs_per_file, compress=compress
    )
    collection.ingest_skipped = skipped
    return collection
