"""The ``BENCH_*.json`` artifact: format, writer, validator.

``repro bench`` emits one machine-readable result file per run (the
repo tracks them at the root: ``BENCH_BASELINE.json`` from the original
pytest-benchmark capture, ``BENCH_PR5.json`` and successors from this
harness).  The payload has five top-level sections:

``schema``
    The literal string ``"repro.bench.result/1"``.  Bump the suffix on
    incompatible changes; readers reject unknown majors.
``machine_info``
    Host fingerprint, the same shape pytest-benchmark wrote into
    ``BENCH_BASELINE.json`` (node / machine / python_* / cpu dict), so
    a trajectory over both formats can ask "same machine?" uniformly.
``commit_info``
    Best-effort git provenance (id, branch, dirty).  Informational.
``protocol``
    The pinned measurement protocol: seed, warmup count, timed
    repetition count, corpus scale.  Two results are only comparable
    when their protocols match — ``repro bench --compare`` warns on a
    mismatch rather than silently gating apples against oranges.
``scenarios``
    One entry per measured scenario: the raw per-repetition seconds,
    the derived order statistics (min/median/quartiles/IQR), optional
    bytes-processed → MB/s, and the per-stage timing summary that
    localizes a regression (parse vs index vs merge) instead of just
    detecting it.  A ``--profile`` run adds an optional ``profile``
    object per scenario (sampler interval, sample count, top self-time
    frames) that sharpens the localization to the offending function.

Validation is hand-rolled (the container has no jsonschema), mirroring
:mod:`repro.obs.schema`: :func:`validate_bench` returns a list of
human-readable problems — empty means valid.  ``repro bench`` refuses
to write an invalid payload and CI fails on a non-empty list.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_FILENAME",
    "BENCH_SCHEMA",
    "SCENARIO_STATS_KEYS",
    "validate_bench",
    "write_bench",
    "load_bench",
]

BENCH_SCHEMA_VERSION = "repro.bench.result/1"
#: The artifact this PR's ``make bench`` writes at the repo root.
BENCH_FILENAME = "BENCH_PR6.json"

#: Top-level sections: name → (required, expected container type).
BENCH_SCHEMA: dict[str, tuple[bool, type]] = {
    "schema": (True, str),
    "machine_info": (True, dict),
    "commit_info": (False, dict),
    "created": (False, str),
    "protocol": (True, dict),
    "scenarios": (True, list),
}

#: Order statistics every scenario must carry.
SCENARIO_STATS_KEYS = ("min", "max", "mean", "median", "q1", "q3", "iqr")

_NUMBER = (int, float)


def _is_number(value: Any) -> bool:
    return isinstance(value, _NUMBER) and not isinstance(value, bool)


def _check_protocol(protocol: Mapping[str, Any], problems: list[str]) -> None:
    for key in ("seed", "warmup", "repetitions"):
        if key not in protocol:
            problems.append(f"protocol: missing key {key!r}")
        elif not _is_number(protocol[key]):
            problems.append(f"protocol.{key}: {protocol[key]!r} is not a number")


def _check_scenario(i: int, entry: Any, problems: list[str]) -> None:
    where = f"scenarios[{i}]"
    if not isinstance(entry, dict):
        problems.append(f"{where}: not an object")
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: missing or empty 'name'")
        name = f"#{i}"
    where = f"scenarios[{i}] ({name})"

    reps = entry.get("repetitions")
    if not isinstance(reps, int) or isinstance(reps, bool) or reps < 1:
        problems.append(f"{where}: 'repetitions' must be a positive integer")
        reps = None

    seconds = entry.get("seconds")
    if not isinstance(seconds, list) or not all(_is_number(s) for s in seconds):
        problems.append(f"{where}: 'seconds' must be a list of numbers")
    else:
        if any(s < 0 for s in seconds):
            problems.append(f"{where}: negative duration in 'seconds'")
        if reps is not None and len(seconds) != reps:
            problems.append(
                f"{where}: {len(seconds)} sample(s) for "
                f"{reps} declared repetition(s)"
            )

    stats = entry.get("stats")
    if not isinstance(stats, dict):
        problems.append(f"{where}: missing 'stats' object")
    else:
        missing = [k for k in SCENARIO_STATS_KEYS if k not in stats]
        if missing:
            problems.append(f"{where}: stats missing key(s) {missing}")
        for key, value in stats.items():
            if not _is_number(value):
                problems.append(f"{where}: stats.{key} {value!r} is not a number")
        if all(_is_number(stats.get(k)) for k in ("min", "median", "max")):
            if not stats["min"] <= stats["median"] <= stats["max"]:
                problems.append(
                    f"{where}: stats are not ordered "
                    f"(min {stats['min']} / median {stats['median']} / "
                    f"max {stats['max']})"
                )
        if _is_number(stats.get("iqr")) and stats["iqr"] < 0:
            problems.append(f"{where}: stats.iqr is negative")

    timings = entry.get("stage_timings")
    if not isinstance(timings, dict):
        problems.append(f"{where}: missing 'stage_timings' object")
    else:
        for key, value in timings.items():
            if not isinstance(key, str):
                problems.append(f"{where}: non-string stage name {key!r}")
            if not _is_number(value):
                problems.append(
                    f"{where}: stage_timings[{key!r}] {value!r} is not a number"
                )

    for optional in ("bytes_processed", "throughput_mbps"):
        if optional in entry and entry[optional] is not None:
            if not _is_number(entry[optional]):
                problems.append(f"{where}: {optional} {entry[optional]!r} is not a number")

    # Optional self-time summary from a ``repro bench --profile`` run;
    # its shape is pinned so the compare gate's function-level
    # localization never has to defend against a malformed table.
    prof = entry.get("profile")
    if prof is not None:
        if not isinstance(prof, dict):
            problems.append(f"{where}: 'profile' must be an object")
        else:
            if not _is_number(prof.get("interval_s")) or prof.get("interval_s") <= 0:
                problems.append(f"{where}: profile.interval_s must be a positive number")
            samples = prof.get("samples")
            if not isinstance(samples, int) or isinstance(samples, bool) or samples < 0:
                problems.append(
                    f"{where}: profile.samples must be a non-negative integer"
                )
            self_s = prof.get("self_s")
            if not isinstance(self_s, dict):
                problems.append(f"{where}: profile.self_s must be an object")
            else:
                for frame, value in self_s.items():
                    if not isinstance(frame, str) or not frame:
                        problems.append(
                            f"{where}: profile.self_s has a non-string frame"
                        )
                    if not _is_number(value) or value < 0:
                        problems.append(
                            f"{where}: profile.self_s[{frame!r}] {value!r} "
                            "is not a non-negative number"
                        )

    # Optional per-resource critical-path summary from a --profile run
    # (see repro.obs.critpath); pinned so --compare's resource-level
    # localization never defends against a malformed block.
    cpath = entry.get("critical_path")
    if cpath is not None:
        if not isinstance(cpath, dict):
            problems.append(f"{where}: 'critical_path' must be an object")
        else:
            for key in ("backend", "top_resource"):
                if not isinstance(cpath.get(key), str) or not cpath.get(key):
                    problems.append(
                        f"{where}: critical_path.{key} must be a non-empty string"
                    )
            for key in ("wall_s", "path_s"):
                if not _is_number(cpath.get(key)) or cpath.get(key) < 0:
                    problems.append(
                        f"{where}: critical_path.{key} must be a "
                        "non-negative number"
                    )
            blame = cpath.get("blame_s")
            if not isinstance(blame, dict):
                problems.append(f"{where}: critical_path.blame_s must be an object")
            else:
                for resource, value in blame.items():
                    if not isinstance(resource, str) or not resource:
                        problems.append(
                            f"{where}: critical_path.blame_s has a "
                            "non-string resource"
                        )
                    if not _is_number(value) or value < 0:
                        problems.append(
                            f"{where}: critical_path.blame_s[{resource!r}] "
                            f"{value!r} is not a non-negative number"
                        )


def validate_bench(payload: Any) -> list[str]:
    """Structural validation; returns problems (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected an object"]

    for key, (required, expected) in BENCH_SCHEMA.items():
        if key not in payload:
            if required:
                problems.append(f"missing required section {key!r}")
            continue
        if not isinstance(payload[key], expected):
            problems.append(
                f"section {key!r} is {type(payload[key]).__name__}, "
                f"expected {expected.__name__}"
            )
    for key in payload:
        if key not in BENCH_SCHEMA:
            problems.append(f"unknown section {key!r}")
    if problems:
        return problems

    version = payload["schema"]
    major = version.rsplit("/", 1)[0]
    if major != BENCH_SCHEMA_VERSION.rsplit("/", 1)[0]:
        problems.append(
            f"schema {version!r} is not a "
            f"{BENCH_SCHEMA_VERSION.rsplit('/', 1)[0]} payload"
        )
    elif version != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != supported {BENCH_SCHEMA_VERSION!r}"
        )

    _check_protocol(payload["protocol"], problems)

    seen: set[str] = set()
    for i, entry in enumerate(payload["scenarios"]):
        _check_scenario(i, entry, problems)
        if isinstance(entry, dict) and isinstance(entry.get("name"), str):
            if entry["name"] in seen:
                problems.append(f"duplicate scenario name {entry['name']!r}")
            seen.add(entry["name"])
    return problems


def write_bench(path: str, payload: Mapping[str, Any]) -> str:
    """Validate and write a bench payload; returns ``path``.

    Writing an invalid payload is a programming error, not an input
    error — fail loudly rather than persist a lie.
    """
    problems = validate_bench(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid bench result to {path}: "
            f"{'; '.join(problems)}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: str) -> dict[str, Any]:
    """Load and validate a ``repro.bench.result`` file; raises on problems.

    Only accepts the native format — :func:`repro.obs.bench.load_results`
    additionally understands pytest-benchmark files
    (``BENCH_BASELINE.json``).
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_bench(payload)
    if problems:
        raise ValueError(f"{path}: {'; '.join(problems)}")
    return payload
