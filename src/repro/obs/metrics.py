"""The metrics registry: counters, gauges, fixed-bucket histograms.

Three instrument kinds, mirroring the usual production trio:

- :class:`Counter` — monotonically increasing totals (docs parsed,
  tokens emitted, B-tree node splits, retry counts);
- :class:`Gauge` — last-write-wins values (dictionary term count,
  string-heap bytes, simulated warp occupancy);
- :class:`Histogram` — fixed-bucket distributions (per-file bytes,
  postings per run).  Buckets are *upper bounds*: ``counts[i]`` counts
  observations ``v <= buckets[i]``; the final slot is the overflow.

Everything recorded here must be **seed-deterministic**: identical
seeded builds produce identical registry contents.  Wall-clock durations
never enter the registry — they travel in the separate ``timings``
section of ``run.metrics.json`` (see :mod:`repro.obs.schema`), which the
determinism test explicitly excludes.

The :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta`
pair is the benchmark-facing API: snapshot before and after a region,
diff the two, and assert on exactly the work that region did.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BYTE_BUCKETS",
]

#: Default histogram geometry: powers of four from 4 B to ~1 GiB.  A
#: coarse exponential ladder keeps bucket counts stable across corpus
#: scales while still separating "tiny header" from "1 GB container".
DEFAULT_BYTE_BUCKETS: tuple[int, ...] = tuple(4 ** k for k in range(1, 16))


class Counter:
    """A monotonically increasing total.

    ``inc`` takes the instrument's own lock: ``value += amount`` is a
    read-modify-write that can lose updates when parser-prefetch and
    indexer-pool workers hit the same counter between bytecodes.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (by {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A fixed-bucket distribution with an overflow slot.

    ``buckets`` are sorted upper bounds; ``counts`` has one extra slot
    for observations above the last bound.  Bucketing uses ``<=`` on the
    bound (bisect-left over bounds), so an observation exactly on a
    bound lands in that bound's bucket.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Iterable[int | float] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BYTE_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted: {bounds}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be distinct: {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total: int | float = 0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # bisect_left over the upper bounds
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            self.counts[lo] += 1
            self.total += value
            self.count += 1

    def bucket_for(self, value: int | float) -> int:
        """Index of the bucket ``observe(value)`` would increment."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument kind for the registry's
    lifetime; asking for the same name as a different kind is a bug and
    raises immediately.  Creation is lock-protected, and every instrument
    carries its own lock around its read-modify-write, so parser-prefetch
    threads, indexer-pool workers and the engine thread can record
    concurrently without losing updates.  Locks make the *totals* exact;
    determinism additionally requires the recorded values themselves be
    seed-deterministic (see the module docstring).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Instrument access
    # ------------------------------------------------------------------ #

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other_kind}, cannot "
                    f"re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.get(name)
                if c is None:
                    self._check_unique(name, "counter")
                    c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.get(name)
                if g is None:
                    self._check_unique(name, "gauge")
                    g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Iterable[int | float] | None = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    self._check_unique(name, "histogram")
                    h = self._histograms[name] = Histogram(name, buckets)
        return h

    # Convenience one-liners for call sites that touch a metric once.
    def count(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: int | float,
                buckets: Iterable[int | float] | None = None) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------ #
    # Snapshot / delta — the benchmark-facing assertion API
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A deep, immutable-enough copy of every instrument's state."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.total,
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }

    @staticmethod
    def delta(
        before: Mapping[str, dict[str, object]],
        after: Mapping[str, dict[str, object]],
    ) -> dict[str, dict[str, object]]:
        """What changed between two snapshots.

        Counters diff numerically; gauges report the new value when it
        changed; histograms diff per-bucket counts.  Metrics absent from
        ``before`` diff against zero, so a delta over a freshly created
        region reads as that region's absolute work.  A metric that
        newly *appeared* is reported even at zero: the multiprocess
        backend replays deltas into the engine registry, and a
        zero-valued counter (``btree.node_splits`` on a split-free
        build) must still materialize there for the metrics file to be
        backend-independent.
        """
        out: dict[str, dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        b_counters = before.get("counters", {})
        for name, value in after.get("counters", {}).items():
            diff = value - b_counters.get(name, 0)
            if diff or name not in b_counters:
                out["counters"][name] = diff
        b_gauges = before.get("gauges", {})
        for name, value in after.get("gauges", {}).items():
            if name not in b_gauges or b_gauges[name] != value:
                out["gauges"][name] = value
        b_hists = before.get("histograms", {})
        for name, h in after.get("histograms", {}).items():
            prev = b_hists.get(
                name, {"counts": [0] * len(h["counts"]), "count": 0, "sum": 0}
            )
            counts = [a - b for a, b in zip(h["counts"], prev["counts"])]
            if any(counts) or name not in b_hists:
                out["histograms"][name] = {
                    "buckets": list(h["buckets"]),
                    "counts": counts,
                    "count": h["count"] - prev["count"],
                    "sum": h["sum"] - prev["sum"],
                }
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: int | float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: int | float) -> None:
        return None


class NullRegistry(MetricsRegistry):
    """The disabled registry: instruments exist but discard writes.

    Callers keep their unconditional ``metrics.count(...)`` call sites;
    a disabled build pays one dict lookup per touch and stores nothing.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = _NullCounter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = _NullGauge(name)
        return g

    def histogram(
        self, name: str, buckets: Iterable[int | float] | None = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = _NullHistogram(name, buckets)
        return h

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
