"""The ``run.profile.json`` artifact: format, writer, validator.

A profiled build (``repro build --profile``) writes one
``run.profile.json`` next to ``build.manifest``, merging the sampling
profiles of the engine process *and* every worker process.  The payload
has five top-level sections:

``schema``
    The literal string ``"repro.run.profile/1"``.  Bump the suffix on
    incompatible changes; readers reject unknown majors.
``meta``
    Provenance: collection name, config description.  Informational.
``interval_s``
    The sampler tick in seconds.  One sample ≈ ``interval_s`` seconds
    of attributed time; every seconds figure a report prints is
    ``count * interval_s``.
``lanes``
    One entry per sampled lane (``engine``, ``cpu-0``, ``parser-1``,
    ``engine/prefetch-w0`` …): the OS pids that contributed (more than
    one after a supervisor restart) and the lane's total sample count.
``stacks``
    The aggregated call stacks: ``{"lane", "frames", "count"}`` with
    ``frames`` root-first (the collapsed-stack order).  Within a lane
    the stack counts sum to the lane's ``samples``, which is what makes
    the folded/speedscope exports loss-free re-renderings of this file.

Unlike ``run.metrics.json`` there is no deterministic section: *every*
value here is a wall-clock measurement by construction.  What identical
seeded builds share is structure — frame ids are
``path:function:first_lineno``, pure functions of the source tree —
which is exactly what :func:`validate_profile` pins and what the
determinism test compares (call-site sets, never counts).

Validation is hand-rolled (the container has no jsonschema), mirroring
:mod:`repro.obs.schema`: :func:`validate_profile` returns a list of
human-readable problems — empty means valid.  ``repro profile`` and the
CI profile smoke job fail on a non-empty list.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA_VERSION",
    "PROFILE_SCHEMA",
    "build_profile_payload",
    "validate_profile",
    "write_profile",
    "load_profile",
]

PROFILE_FILENAME = "run.profile.json"
PROFILE_SCHEMA_VERSION = "repro.run.profile/1"

#: Top-level sections: name → (required, expected type(s)).
PROFILE_SCHEMA: dict[str, tuple[bool, Any]] = {
    "schema": (True, str),
    "meta": (False, dict),
    "interval_s": (True, (int, float)),
    "lanes": (True, dict),
    "stacks": (True, list),
}

_NUMBER = (int, float)


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def build_profile_payload(
    interval_s: float,
    lane_pids: Mapping[str, Any],
    lane_stacks: Mapping[str, Mapping[tuple, int]],
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a schema-conformant payload from merged sampler state.

    ``lane_pids`` maps lane → pid(s) (an int or an iterable of ints);
    ``lane_stacks`` maps lane → {frame tuple (root-first): sample count}.
    Stacks are emitted in sorted (lane, frames) order so two payloads
    with the same call-site sets diff cleanly.
    """
    lanes: dict[str, Any] = {}
    stacks: list[dict[str, Any]] = []
    for lane in sorted(lane_stacks):
        counts = lane_stacks[lane]
        pids = lane_pids.get(lane, ())
        if isinstance(pids, int):
            pids = (pids,)
        lanes[lane] = {
            "pids": sorted(set(int(p) for p in pids)),
            "samples": sum(counts.values()),
        }
        for frames in sorted(counts):
            stacks.append(
                {
                    "lane": lane,
                    "frames": [str(f) for f in frames],
                    "count": int(counts[frames]),
                }
            )
    return {
        "schema": PROFILE_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "interval_s": float(interval_s),
        "lanes": lanes,
        "stacks": stacks,
    }


def validate_profile(payload: Any) -> list[str]:
    """Structural validation; returns problems (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected an object"]

    for key, (required, expected) in PROFILE_SCHEMA.items():
        if key not in payload:
            if required:
                problems.append(f"missing required section {key!r}")
            continue
        value = payload[key]
        if isinstance(expected, tuple):
            if not isinstance(value, expected) or isinstance(value, bool):
                problems.append(
                    f"section {key!r} is {type(value).__name__}, expected a number"
                )
        elif not isinstance(value, expected):
            problems.append(
                f"section {key!r} is {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
    for key in payload:
        if key not in PROFILE_SCHEMA:
            problems.append(f"unknown section {key!r}")
    if problems:
        return problems

    version = payload["schema"]
    major = version.rsplit("/", 1)[0]
    if major != PROFILE_SCHEMA_VERSION.rsplit("/", 1)[0]:
        problems.append(
            f"schema {version!r} is not a "
            f"{PROFILE_SCHEMA_VERSION.rsplit('/', 1)[0]} payload"
        )
    elif version != PROFILE_SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != supported {PROFILE_SCHEMA_VERSION!r}"
        )

    if payload["interval_s"] <= 0:
        problems.append(f"interval_s: {payload['interval_s']!r} is not positive")

    lane_declared: dict[str, int] = {}
    for lane, entry in payload["lanes"].items():
        where = f"lanes[{lane!r}]"
        if not isinstance(lane, str) or not lane:
            problems.append(f"lanes: non-string or empty lane name {lane!r}")
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = {"pids", "samples"} - set(entry)
        if missing:
            problems.append(f"{where}: missing key(s) {sorted(missing)}")
            continue
        pids = entry["pids"]
        if (
            not isinstance(pids, list)
            or not pids
            or not all(_is_count(p) and p > 0 for p in pids)
        ):
            problems.append(
                f"{where}: pids must be a non-empty list of positive integers"
            )
        if not _is_count(entry["samples"]) or entry["samples"] < 0:
            problems.append(f"{where}: samples must be a non-negative integer")
        else:
            lane_declared[lane] = entry["samples"]

    lane_counted: dict[str, int] = {}
    seen: set[tuple[str, tuple]] = set()
    for i, entry in enumerate(payload["stacks"]):
        where = f"stacks[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = {"lane", "frames", "count"} - set(entry)
        if missing:
            problems.append(f"{where}: missing key(s) {sorted(missing)}")
            continue
        lane, frames, count = entry["lane"], entry["frames"], entry["count"]
        if not isinstance(lane, str) or lane not in payload["lanes"]:
            problems.append(f"{where}: lane {lane!r} not declared in 'lanes'")
            continue
        if (
            not isinstance(frames, list)
            or not frames
            or not all(isinstance(f, str) and f for f in frames)
        ):
            problems.append(
                f"{where}: frames must be a non-empty list of non-empty strings"
            )
            continue
        if not _is_count(count) or count < 1:
            problems.append(f"{where}: count must be a positive integer")
            continue
        key = (lane, tuple(frames))
        if key in seen:
            problems.append(
                f"{where}: duplicate stack for lane {lane!r} (must be aggregated)"
            )
        seen.add(key)
        lane_counted[lane] = lane_counted.get(lane, 0) + count

    for lane, declared in lane_declared.items():
        counted = lane_counted.get(lane, 0)
        if counted != declared:
            problems.append(
                f"lanes[{lane!r}]: declares {declared} sample(s) but its "
                f"stacks sum to {counted}"
            )
    return problems


def write_profile(path: str, payload: Mapping[str, Any]) -> str:
    """Validate and write a profile payload; returns ``path``.

    Writing an invalid payload is a programming error, not an input
    error — fail loudly rather than persist a lie.
    """
    problems = validate_profile(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid profile to {path}: {'; '.join(problems)}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_profile(path: str) -> dict[str, Any]:
    """Load and validate a ``run.profile.json``; raises on problems."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_profile(payload)
    if problems:
        raise ValueError(f"{path}: {'; '.join(problems)}")
    return payload
