"""Span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* — named, nested intervals of wall
time, one lane per worker (engine thread, parser thread, indexer) — and
exports them in the Chrome trace-event format (the ``traceEvents`` JSON
consumed by Perfetto and ``chrome://tracing``), so the pipeline's stage
overlap becomes a visible lane-per-worker timeline.

Design constraints, in order:

1. **Cheap when off.**  The :class:`NullTracer` hands out a single
   pre-allocated context manager; a disabled build does no clock reads,
   no allocation, and no locking per span.
2. **Cheap when on.**  Entering a span is two clock reads, one tuple of
   stack bookkeeping, and one lock-protected list append on exit.
3. **Deterministic-safe.**  Spans carry wall-clock timings, which differ
   between runs; everything *derived* from spans therefore lives outside
   the deterministic metrics sections (see :mod:`repro.obs.schema`).
   Span *structure* (names, lanes, nesting, args) is deterministic.
4. **Thread-correct.**  Parser prefetch threads and the engine thread
   trace concurrently; nesting stacks are thread-local and the finished
   list is lock-protected.

Spans record seconds relative to the tracer's epoch; the Chrome export
converts to integer microseconds (the format's native unit).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "load_chrome_trace"]


@dataclass(frozen=True)
class Span:
    """One finished span: a named interval on a worker lane."""

    name: str
    cat: str
    lane: str
    start_s: float  # seconds since the tracer's epoch
    end_s: float
    depth: int  # nesting depth within the lane (0 = top level)
    parent: str | None  # enclosing span's name on the same lane
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Tracer:
    """Collects spans and exports Chrome trace-event JSON."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _stack(self, lane: str) -> list[str]:
        stacks: dict[str, list[str]] | None = getattr(self._local, "stacks", None)
        if stacks is None:
            stacks = {}
            self._local.stacks = stacks
        return stacks.setdefault(lane, [])

    @contextmanager
    def span(
        self, name: str, cat: str = "build", lane: str = "engine", **args: Any
    ) -> Iterator[dict[str, Any]]:
        """Trace one interval; yields the span's mutable ``args`` dict.

        Callers may add tags after entry (e.g. byte counts known only
        once the work is done)::

            with tracer.span("parse", lane="parser-0", file=k) as tags:
                parsed = parse(path)
                tags["docs"] = parsed.num_docs
        """
        stack = self._stack(lane)
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        start = self._clock() - self.epoch
        try:
            yield args
        finally:
            end = self._clock() - self.epoch
            stack.pop()
            record = Span(
                name=name, cat=cat, lane=lane, start_s=start, end_s=end,
                depth=depth, parent=parent, args=args,
            )
            with self._lock:
                self.spans.append(record)

    def instant(self, name: str, cat: str = "build", lane: str = "engine",
                **args: Any) -> None:
        """Record a zero-duration marker (e.g. a checkpoint boundary)."""
        now = self._clock() - self.epoch
        stack = self._stack(lane)
        record = Span(
            name=name, cat=cat, lane=lane, start_s=now, end_s=now,
            depth=len(stack), parent=stack[-1] if stack else None, args=args,
        )
        with self._lock:
            self.spans.append(record)

    # ------------------------------------------------------------------ #
    # Cross-process span shipping (the multiprocess backend)
    # ------------------------------------------------------------------ #

    def drain_spans(self) -> list[Span]:
        """Remove and return every finished span recorded so far.

        Worker processes drain their local tracer on each reply and ship
        the spans to the engine, which :meth:`absorb`\\ s them — so a
        multiprocess build's trace still shows per-worker lanes.
        """
        with self._lock:
            out = self.spans
            self.spans = []
        return out

    def absorb(self, spans: Iterable[Span], epoch: float) -> None:
        """Adopt spans recorded by another tracer on the *same clock*.

        ``epoch`` is the foreign tracer's epoch on that shared clock
        (``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, so
        engine and worker processes agree); spans are re-based onto this
        tracer's epoch so lanes line up on one timeline.
        """
        shift = epoch - self.epoch
        rebased = [
            replace(s, start_s=s.start_s + shift, end_s=s.end_s + shift)
            for s in spans
        ]
        with self._lock:
            self.spans.extend(rebased)

    # ------------------------------------------------------------------ #
    # Queries (used by repro trace / the tests)
    # ------------------------------------------------------------------ #

    def find(self, name: str) -> list[Span]:
        """All finished spans with ``name``, in completion order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def lanes(self) -> list[str]:
        """Distinct lanes in first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for s in self.spans:
                seen.setdefault(s.lane, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # Chrome trace-event export
    # ------------------------------------------------------------------ #

    def to_chrome(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Every span becomes a complete ("ph": "X") event with integer
        microsecond timestamps; each lane gets a ``thread_name``
        metadata event so Perfetto labels the timeline rows.
        """
        with self._lock:
            spans = list(self.spans)
        events: list[dict[str, Any]] = []
        tids: dict[str, int] = {}
        for s in spans:
            tid = tids.setdefault(s.lane, len(tids) + 1)
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "ts": round(s.start_s * 1e6),
                    "dur": round(s.duration_s * 1e6),
                    "pid": 1,
                    "tid": tid,
                    "args": s.args,
                }
            )
        for lane, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, separators=(",", ":"))
        return path


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    ``span()`` returns one shared, re-entrant context manager, so a
    disabled build pays a dict lookup and a function call per span —
    no clock reads, no allocation, no lock.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)
        self._null_args: dict[str, Any] = {}

    @contextmanager
    def _null_cm(self) -> Iterator[dict[str, Any]]:
        yield self._null_args

    def span(self, name: str, cat: str = "build", lane: str = "engine",
             **args: Any):  # type: ignore[override]
        return self._null_cm()

    def instant(self, name: str, cat: str = "build", lane: str = "engine",
                **args: Any) -> None:
        return None


def load_chrome_trace(path: str) -> list[dict[str, Any]]:
    """Load and structurally check a Chrome trace file.

    Returns the ``traceEvents`` list.  Raises :class:`ValueError` when
    the file is not a loadable Chrome trace (the integration tests and
    ``repro trace`` rely on this to reject damaged artifacts).
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace (missing 'traceEvents')")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: 'traceEvents' is not a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev or "name" not in ev:
            raise ValueError(f"{path}: event #{i} lacks 'ph'/'name'")
        if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
            raise ValueError(f"{path}: complete event #{i} lacks 'ts'/'dur'")
    return events
