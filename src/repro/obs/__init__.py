"""Observability for the indexing engine: spans, metrics, artifacts.

The paper's evaluation is a story about *where time goes* — stage
overlap (Fig 9/10), per-trie-collection skew (Section III.E), the
CPU/GPU work split (Table V).  This package makes those stories visible
on the functional build:

- :mod:`repro.obs.trace` — a low-overhead span tracer with nested spans
  per pipeline stage, one lane per worker, exportable as Chrome
  trace-event JSON (open in Perfetto or ``chrome://tracing``);
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms whose values are **seed-deterministic**
  (wall-clock measurements are quarantined in a separate ``timings``
  section, so two identical seeded builds produce identical metrics);
- :mod:`repro.obs.schema` — the ``run.metrics.json`` artifact format and
  its validator (no external jsonschema dependency);
- :mod:`repro.obs.profile` + :mod:`repro.obs.profile_schema` — a
  cross-process sampling profiler (``build --profile``) whose merged
  view lands in ``run.profile.json`` with folded/speedscope exports and
  a shm-codec hot-path report (``repro profile``);
- :mod:`repro.obs.runtime` — process-wide installation, mirroring
  :mod:`repro.robustness.faults`, so deep layers (checkpointing, retry)
  can emit counters without threading a registry through every call;
- :mod:`repro.obs.stats` — trace/metrics summarization for the
  ``repro trace`` and ``repro stats`` CLI subcommands.

Instrumentation is **on by default** (``PlatformConfig.telemetry``) and
collapses to near-no-ops when disabled: the null tracer hands out one
shared reusable context manager and the null registry's instruments
discard writes.

This package is stdlib-only and engine-free: importing it never pulls in
the engine, so ``repro.lint`` and the CLI's lazy import discipline are
preserved.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry
from repro.obs.profile import (
    Profile,
    SamplingProfiler,
    render_profile_diff,
    render_profile_report,
    to_folded,
    to_speedscope,
)
from repro.obs.profile_schema import (
    PROFILE_FILENAME,
    PROFILE_SCHEMA_VERSION,
    load_profile,
    validate_profile,
    write_profile,
)
from repro.obs.runtime import Telemetry, current, install, session, uninstall
from repro.obs.schema import (
    METRICS_FILENAME,
    METRICS_SCHEMA,
    TRACE_FILENAME,
    load_metrics,
    validate_metrics,
    write_metrics,
)
from repro.obs.trace import NullTracer, Span, Tracer, load_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "Profile",
    "SamplingProfiler",
    "METRICS_FILENAME",
    "METRICS_SCHEMA",
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "current",
    "install",
    "load_chrome_trace",
    "load_metrics",
    "load_profile",
    "render_profile_diff",
    "render_profile_report",
    "session",
    "to_folded",
    "to_speedscope",
    "uninstall",
    "validate_metrics",
    "validate_profile",
    "write_metrics",
    "write_profile",
]
