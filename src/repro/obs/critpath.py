"""Cross-process critical-path analysis with blame and what-if projection.

The profiler (PR 8) ranks hot functions; this module answers the
*causal* question behind ROADMAP's top item ("make the multiprocess
backend actually fast"): which chain of cross-process events bounds
wall-clock, which **resource** each link is waiting on, and what buying
a resource down would be worth before anyone builds the optimization.

Ingestion is post-hoc: ``trace.json`` (the span timeline, with worker
lanes re-based onto the engine clock by ``Tracer.absorb``) plus
``run.metrics.json`` (``shm.ring.*`` wait counters, ``pipeline.stall.*``
timings).  No new clocks are read — everything derives from recorded
artifacts, so the analysis is repeatable from the artifacts alone.

The causal model
----------------
The engine thread is the build's coordinator: every parsed file is
collected, dispatched and drained *on the engine lane in file order*
(the ordering contract that makes the three backends byte-identical),
so the critical path necessarily threads through the engine lane's
chain of spans::

    sampling → [parse/parse.wait → pipeline.dispatch →
    pipeline.wait]* → write_run/checkpoint → dict.combine/dict.write

Cross-process causality enters when a chain link is a *wait*: the
engine's ``parse.wait``/``pipeline.wait`` interval is refined against
the worker lanes' compute spans (``parse_file`` on ``parser-*`` lanes,
``index_batch`` on ``cpu-*``/``gpu-*`` lanes — the file-parse →
frame-enqueue → ring-dequeue → index-task happens-before edges carried
by the spans' ``cp``/``cp_from`` attributes):

- wait time overlapping a ``supervisor.recover`` span is **supervisor**
  (restart/replay edges);
- wait time while some worker lane runs genuine parse/index compute is
  blamed on that compute (**parse** / **index**) — the engine was
  causally bound by work serial mode would also pay for;
- the remainder — the engine blocked with *no* concurrent compute — is
  pure transport: **ring-wait** under the multiprocess backend (frame
  encode/enqueue/dequeue, poll sleeps, scheduling), **stall**
  (queue/backpressure handoff) otherwise.

That remainder definition is what makes the flagship what-if honest:
``ring-wait → 0`` projects the build onto its serial-equivalent cost,
so the prediction is directly checkable against a measured ``--exec
serial`` vs ``--exec multiprocess`` gap (the CI demo asserts ±25%).

What-if projection scales each edge's seconds by its resource's factor
and recomputes the path length, floored by the busiest worker lane's
scaled compute (zeroing a wait cannot outrun the work itself).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.critpath_schema import (
    CRITPATH_FILENAME,
    CRITPATH_RESOURCES,
    CRITPATH_SCHEMA_VERSION,
)
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME
from repro.obs.stats import spans_from_chrome
from repro.obs.trace import Span, load_chrome_trace

__all__ = [
    "PathEdge",
    "CriticalPath",
    "Projection",
    "analyze_spans",
    "analyze_trace_file",
    "analyze_index_dir",
    "build_critpath_payload",
    "default_projections",
    "project",
    "parse_what_if",
    "summarize_for_bench",
    "render_critpath_report",
    "render_critpath_diff",
    "to_chrome_overlay",
    "write_chrome_overlay",
]

#: Engine-lane spans that form the coordinator chain, i.e. the
#: candidate critical-path links.  ``build``/``run_loop`` are container
#: spans; everything else on the engine lane is a gap ("engine" blame).
_CHAIN_NAMES = frozenset({
    "sampling", "parse", "parse.wait", "index",
    "pipeline.dispatch", "pipeline.wait",
    "write_run", "checkpoint",
    "dict.combine", "dict.write", "simulate",
})

#: Worker-lane compute spans and the resource they represent.  Only the
#: outermost compute span per task is listed (``parse_file`` contains
#: ``read``/``regroup``) so interval unions never double-count.
_COMPUTE_RESOURCE = {
    "parse_file": "parse",
    "index_batch": "index",
    "merge.read_runs": "merge",
    "merge.write": "merge",
}

#: Direct resource classification for non-wait chain spans.
_DIRECT_RESOURCE = {
    "sampling": "sampling",
    "parse": "parse",
    "index": "index",
    "write_run": "flush",
    "checkpoint": "flush",
    "dict.combine": "merge",
    "dict.write": "merge",
    "simulate": "engine",
}

Interval = tuple[float, float]


# ---------------------------------------------------------------------- #
# Interval arithmetic (closed-open [start, end) segments)
# ---------------------------------------------------------------------- #


def _union(intervals: Iterable[Interval]) -> list[Interval]:
    merged: list[Interval] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersect(a: list[Interval], b: list[Interval]) -> list[Interval]:
    out: list[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _subtract(a: list[Interval], b: list[Interval]) -> list[Interval]:
    out: list[Interval] = []
    for start, end in a:
        cursor = start
        for bs, be in b:
            if be <= cursor or bs >= end:
                continue
            if bs > cursor:
                out.append((cursor, bs))
            cursor = max(cursor, be)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def _total(intervals: Iterable[Interval]) -> float:
    return sum(end - start for start, end in intervals)


# ---------------------------------------------------------------------- #
# The analysis result
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class PathEdge:
    """One causal link on the critical path."""

    src: str
    dst: str
    start_s: float
    end_s: float
    resource: str
    detail: str = ""

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class Projection:
    """One what-if prediction: scale resources, recompute the path."""

    label: str
    scales: Mapping[str, float]
    predicted_wall_s: float
    speedup: float


@dataclass
class CriticalPath:
    """A build's critical path, blame decomposition and lane floors."""

    backend: str
    wall_seconds: float
    edges: list[PathEdge] = field(default_factory=list)
    #: Per worker lane: interval-union busy seconds and the dominant
    #: compute resource on that lane (the projection floor's scale key).
    lane_busy_s: dict[str, float] = field(default_factory=dict)
    lane_resource: dict[str, str] = field(default_factory=dict)

    @property
    def path_seconds(self) -> float:
        return sum(e.seconds for e in self.edges)

    def blame(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for edge in self.edges:
            out[edge.resource] = out.get(edge.resource, 0.0) + edge.seconds
        return out

    def top_resource(self, ignore: tuple[str, ...] = ("engine",)) -> str | None:
        """The heaviest blame resource, skipping ``ignore`` buckets."""
        ranked = sorted(
            ((s, r) for r, s in self.blame().items() if r not in ignore),
            reverse=True,
        )
        return ranked[0][1] if ranked else None


# ---------------------------------------------------------------------- #
# Graph construction
# ---------------------------------------------------------------------- #


def _node_id(span: Span, kind: str) -> str:
    """A stable causal-point id for a chain span.

    Spans instrumented with explicit edge ids (the ``cp`` attribute
    wired through engine/exec_backend/mp_backend/pipeline_exec) use
    them verbatim; older traces fall back to name+file synthesis so the
    analyzer keeps working on pre-instrumentation artifacts.
    """
    cp = span.args.get("cp")
    if isinstance(cp, str) and cp:
        return cp
    file_arg = span.args.get("file")
    if file_arg is not None:
        return f"{kind}:{file_arg}"
    run_arg = span.args.get("run")
    if run_arg is not None:
        return f"{kind}:run{run_arg}"
    return kind


def _refine_wait(
    span: Span,
    prev: str,
    node: str,
    backend: str,
    compute_unions: Mapping[str, list[Interval]],
    recover_union: list[Interval],
) -> list[PathEdge]:
    """Split one engine wait interval into causally-attributed edges."""
    window = [(span.start_s, span.end_s)]
    reason = span.args.get("reason")
    pure_resource = "ring-wait" if backend == "multiprocess" else "stall"
    pure_detail = (
        f"{span.name} ({reason})" if reason else span.name
    )
    # A dispatch span is producer-side transport (encode + enqueue) for
    # the multiprocess backend; in-process dispatch is coordinator work.
    if span.name == "pipeline.dispatch":
        if backend != "multiprocess":
            return [PathEdge(prev, node, span.start_s, span.end_s,
                             "engine", "pipeline.dispatch")]
        pure_detail = "frame-enqueue"

    # Priority order: supervisor recovery first, then the wait's own
    # cause (parse for parse.wait, index for pipeline.wait), then the
    # other compute kind, then the pure-transport remainder.
    first = "parse" if span.name in ("parse.wait", "parse") else "index"
    second = "index" if first == "parse" else "parse"
    pieces: list[tuple[str, str, list[Interval]]] = []

    sup = _intersect(window, recover_union)
    if sup:
        pieces.append(("supervisor", "restart/replay", sup))
        window = _subtract(window, sup)
    for resource in (first, second):
        hit = _intersect(window, compute_unions.get(resource, []))
        if hit:
            pieces.append((resource, f"blocked on {resource} compute", hit))
            window = _subtract(window, hit)
    if window:
        pieces.append((pure_resource, pure_detail, window))
    return _emit_pieces(pieces, prev, node)


def _emit_pieces(
    pieces: list[tuple[str, str, list[Interval]]], prev: str, node: str
) -> list[PathEdge]:
    """Flatten attributed segments into temporally-ordered path edges."""
    flat = [
        (start, end, resource, detail)
        for resource, detail, segs in pieces
        for start, end in segs
    ]
    flat.sort()
    edges = []
    for i, (start, end, resource, detail) in enumerate(flat):
        last = i == len(flat) - 1
        edges.append(PathEdge(
            prev if i == 0 else f"{node}+{i}",
            node if last else f"{node}+{i + 1}",
            start, end, resource, detail,
        ))
    return edges


def _refine_flush(
    span: Span, prev: str, node: str, backend: str,
    drain_union: list[Interval],
) -> list[PathEdge]:
    """Split a ``write_run`` span into drain transport vs flush work.

    The multiprocess backend's run boundary ships every worker's pickled
    postings + state over the result rings (the nested ``drain.wait``
    spans); that is transport the serial build never pays, so it belongs
    to ring-wait — only the remainder (run-file write, manifest append)
    is genuine flush.
    """
    window = [(span.start_s, span.end_s)]
    pieces: list[tuple[str, str, list[Interval]]] = []
    transport = _intersect(window, drain_union)
    if transport:
        resource = "ring-wait" if backend == "multiprocess" else "stall"
        pieces.append((resource, "run-drain", transport))
        window = _subtract(window, transport)
    if window:
        pieces.append(("flush", span.name, window))
    return _emit_pieces(pieces, prev, node)


def analyze_spans(spans: list[Span], backend: str | None = None) -> CriticalPath:
    """Build the causal graph from a span timeline; compute the path.

    ``spans`` is the full trace (engine + worker lanes on one re-based
    clock).  ``backend`` overrides detection (normally read off the
    ``run_loop`` span's ``backend`` attribute).
    """
    if not spans:
        raise ValueError("empty trace: nothing to analyze")

    roots = [s for s in spans if s.name == "build"]
    root = max(roots, key=lambda s: s.duration_s) if roots else None
    t0 = root.start_s if root else min(s.start_s for s in spans)
    t1 = root.end_s if root else max(s.end_s for s in spans)
    if backend is None:
        loops = [s for s in spans if s.name == "run_loop"]
        backend = str(loops[0].args.get("backend", "serial")) if loops else "serial"

    engine_lanes = {root.lane} if root else {"engine"}
    chain = sorted(
        (s for s in spans
         if s.lane in engine_lanes and s.name in _CHAIN_NAMES
         and s.name != "supervisor.recover"),
        key=lambda s: (s.start_s, s.end_s),
    )
    recover_union = _union(
        (s.start_s, s.end_s) for s in spans if s.name == "supervisor.recover"
    )
    drain_union = _union(
        (s.start_s, s.end_s)
        for s in spans
        if s.name == "drain.wait" and s.lane in engine_lanes
    )

    # Per-resource worker compute unions and per-lane busy time.
    compute_unions: dict[str, list[Interval]] = {}
    lane_intervals: dict[str, list[Interval]] = {}
    lane_resource: dict[str, str] = {}
    for s in spans:
        resource = _COMPUTE_RESOURCE.get(s.name)
        if resource is None or s.lane in engine_lanes:
            continue
        compute_unions.setdefault(resource, []).append((s.start_s, s.end_s))
        lane_intervals.setdefault(s.lane, []).append((s.start_s, s.end_s))
        lane_resource.setdefault(s.lane, resource)
    compute_unions = {r: _union(v) for r, v in compute_unions.items()}
    lane_busy = {
        lane: _total(_union(v)) for lane, v in lane_intervals.items()
    }

    cp = CriticalPath(
        backend=backend,
        wall_seconds=max(0.0, t1 - t0),
        lane_busy_s=lane_busy,
        lane_resource=lane_resource,
    )

    cursor = t0
    prev = "start"
    for span in chain:
        start = max(span.start_s, cursor)
        if start >= span.end_s:
            continue  # fully shadowed by an earlier chain span
        node = _node_id(span, span.name)
        if span.start_s > cursor:
            cp.edges.append(PathEdge(
                prev, node, cursor, span.start_s, "engine", "coordinator",
            ))
            prev = node
        clipped = Span(
            name=span.name, cat=span.cat, lane=span.lane,
            start_s=start, end_s=span.end_s, depth=span.depth,
            parent=span.parent, args=span.args,
        )
        if span.name in ("parse.wait", "pipeline.wait", "pipeline.dispatch"):
            edges = _refine_wait(
                clipped, prev, node, backend, compute_unions, recover_union
            )
        elif span.name == "write_run":
            edges = _refine_flush(clipped, prev, node, backend, drain_union)
        else:
            resource = _DIRECT_RESOURCE.get(span.name, "engine")
            edges = [PathEdge(prev, node, start, span.end_s,
                              resource, span.name)]
        cp.edges.extend(edges)
        prev = node
        cursor = span.end_s
    if cursor < t1:
        cp.edges.append(PathEdge(prev, "end", cursor, t1, "engine", "epilogue"))
    return cp


def analyze_trace_file(
    trace_path: str, backend: str | None = None
) -> CriticalPath:
    """Analyze a ``trace.json`` on disk (see :func:`analyze_spans`)."""
    events = load_chrome_trace(trace_path)
    spans = spans_from_chrome(events)
    return analyze_spans(spans, backend=backend)


def analyze_index_dir(index_dir: str) -> tuple[CriticalPath, dict[str, Any]]:
    """Analyze an index directory's artifacts.

    Returns the path plus the metrics payload's relevant slices (ring
    counters for the report's cross-check), or ``{}`` when the build
    wrote no ``run.metrics.json``.
    """
    trace_path = os.path.join(index_dir, TRACE_FILENAME)
    if not os.path.exists(trace_path):
        raise FileNotFoundError(trace_path)
    cp = analyze_trace_file(trace_path)
    metrics: dict[str, Any] = {}
    metrics_path = os.path.join(index_dir, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        from repro.obs.schema import load_metrics

        metrics = load_metrics(metrics_path)
    return cp, metrics


# ---------------------------------------------------------------------- #
# What-if projection
# ---------------------------------------------------------------------- #


def project(cp: CriticalPath, scales: Mapping[str, float], label: str) -> Projection:
    """Scale each resource's edges, recompute the path length.

    The prediction is floored by the busiest worker lane's scaled
    compute: removing every wait still leaves the work itself, so
    "zero out ring-wait" can never predict outrunning the parsers.
    """
    for resource in scales:
        if resource not in CRITPATH_RESOURCES:
            raise ValueError(
                f"unknown resource {resource!r} "
                f"(expected one of {', '.join(CRITPATH_RESOURCES)})"
            )
    scaled_path = sum(
        e.seconds * scales.get(e.resource, 1.0) for e in cp.edges
    )
    lane_floor = max(
        (
            busy * scales.get(cp.lane_resource.get(lane, "engine"), 1.0)
            for lane, busy in cp.lane_busy_s.items()
        ),
        default=0.0,
    )
    predicted = max(scaled_path, lane_floor)
    speedup = cp.wall_seconds / predicted if predicted > 0 else 1.0
    return Projection(
        label=label,
        scales=dict(scales),
        predicted_wall_s=predicted,
        speedup=speedup,
    )


def default_projections(cp: CriticalPath) -> list[Projection]:
    """The ranked what-if menu: zero each blamed resource, plus the
    flagship frame-batching prediction when ring-wait is in play."""
    blame = cp.blame()
    projections: list[Projection] = []
    if blame.get("ring-wait", 0.0) > 0:
        projections.append(project(
            cp, {"ring-wait": 0.1}, "batch ring frames (-90% ring-wait)"
        ))
    for resource, seconds in blame.items():
        if resource == "engine" or seconds <= 0:
            continue
        projections.append(project(cp, {resource: 0.0}, f"{resource} -> 0"))
    projections.sort(key=lambda p: (-p.speedup, p.label))
    return projections


def parse_what_if(specs: Iterable[str]) -> dict[str, float]:
    """Parse CLI ``--what-if resource=scale`` specs into a scale map."""
    scales: dict[str, float] = {}
    for spec in specs:
        resource, sep, factor = spec.partition("=")
        resource = resource.strip()
        if not sep or resource not in CRITPATH_RESOURCES:
            raise ValueError(
                f"bad what-if spec {spec!r}: expected RESOURCE=SCALE with "
                f"RESOURCE one of {', '.join(CRITPATH_RESOURCES)}"
            )
        try:
            value = float(factor)
        except ValueError:
            raise ValueError(
                f"bad what-if scale {factor!r} in {spec!r}: not a number"
            ) from None
        if value < 0:
            raise ValueError(f"what-if scale must be >= 0, got {value}")
        scales[resource] = value
    return scales


# ---------------------------------------------------------------------- #
# Payload assembly
# ---------------------------------------------------------------------- #


def build_critpath_payload(
    cp: CriticalPath,
    projections: list[Projection] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the validated ``run.critpath.json`` payload."""
    if projections is None:
        projections = default_projections(cp)
    path_s = cp.path_seconds
    payload: dict[str, Any] = {
        "schema": CRITPATH_SCHEMA_VERSION,
        "backend": cp.backend,
        "wall_seconds": cp.wall_seconds,
        "path_seconds": path_s,
        "coverage": (path_s / cp.wall_seconds) if cp.wall_seconds > 0 else 0.0,
        "blame": {r: s for r, s in sorted(cp.blame().items())},
        "edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "start_s": e.start_s,
                "end_s": e.end_s,
                "seconds": e.seconds,
                "resource": e.resource,
                "detail": e.detail,
            }
            for e in cp.edges
        ],
        "lanes": {
            lane: busy for lane, busy in sorted(cp.lane_busy_s.items())
        },
        "projections": [
            {
                "label": p.label,
                "scales": dict(p.scales),
                "predicted_wall_s": p.predicted_wall_s,
                "speedup": p.speedup,
            }
            for p in projections
        ],
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


def summarize_for_bench(
    trace_path: str, metrics_path: str | None = None
) -> dict[str, Any]:
    """The compact per-scenario ``critical_path`` block for bench results.

    Small on purpose (wall, path, blame, top resource): enough for the
    regression gate to localize a slowdown to a resource, small enough
    that ``BENCH_*.json`` stays a diff-able artifact.
    """
    cp = analyze_trace_file(trace_path)
    top = cp.top_resource()
    return {
        "backend": cp.backend,
        "wall_s": cp.wall_seconds,
        "path_s": cp.path_seconds,
        "blame_s": {r: s for r, s in sorted(cp.blame().items())},
        "top_resource": top if top is not None else "engine",
    }


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.3f}ms"


def render_critpath_report(
    payload: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    extra_projections: list[Projection] | None = None,
) -> str:
    """ASCII report for ``repro critpath``: blame table, ring-wait
    cross-check against the measured ``shm.ring.*`` counters, and the
    ranked what-if predictions."""
    wall = payload["wall_seconds"]
    path_s = payload["path_seconds"]
    lines = [
        f"critical path: backend {payload['backend']}, wall {wall:.3f}s, "
        f"path {path_s:.3f}s ({payload['coverage'] * 100:.1f}% coverage), "
        f"{len(payload['edges'])} edge(s)"
    ]
    lines.append("")
    lines.append("blame by resource (seconds on the critical path):")
    blame = payload["blame"]
    ranked = sorted(blame.items(), key=lambda kv: (-kv[1], kv[0]))
    for resource, seconds in ranked:
        share = seconds / path_s * 100 if path_s > 0 else 0.0
        bar = "#" * int(round(share / 2))
        lines.append(
            f"  {resource:<10} {_fmt_s(seconds)}  {share:5.1f}%  {bar}"
        )
    top = next((r for s, r in sorted(
        ((s, r) for r, s in blame.items() if r != "engine"), reverse=True
    )), None)
    if top is not None:
        lines.append(f"  top blame resource: {top}")

    if metrics is not None:
        counters = metrics.get("counters", {})
        cons = counters.get("shm.ring.consumer_wait_s", 0.0)
        prod = counters.get("shm.ring.producer_wait_s", 0.0)
        if cons or prod:
            lines.append(
                f"  measured ring waits: consumer ~{cons:.3f}s, "
                f"producer ~{prod:.3f}s "
                f"(path blames ring-wait {blame.get('ring-wait', 0.0):.3f}s)"
            )

    projections = list(payload["projections"])
    lines.append("")
    lines.append("what-if projections (ranked by predicted speedup):")
    rows = projections + [
        {
            "label": p.label,
            "predicted_wall_s": p.predicted_wall_s,
            "speedup": p.speedup,
        }
        for p in (extra_projections or [])
    ]
    if rows:
        for proj in rows:
            lines.append(
                f"  {proj['label']:<38} => predicted "
                f"{proj['speedup']:.2f}x "
                f"({wall:.3f}s -> {proj['predicted_wall_s']:.3f}s)"
            )
    else:
        lines.append("  (no blamed resources to project)")

    lanes = payload["lanes"]
    if lanes:
        lines.append("")
        lines.append("worker-lane compute (projection floor):")
        for lane, busy in sorted(lanes.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  lane {lane:<16} busy {busy:.3f}s")
    return "\n".join(lines)


def render_critpath_diff(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> str:
    """Diff report for ``repro critpath --diff OLD NEW``: per-resource
    blame movement, biggest mover first — the resource-level analogue
    of ``repro profile --diff``."""
    lines = [
        f"critpath diff: wall {old['wall_seconds']:.3f}s -> "
        f"{new['wall_seconds']:.3f}s "
        f"(backends {old['backend']} -> {new['backend']})"
    ]
    old_blame, new_blame = old["blame"], new["blame"]
    resources = sorted(
        set(old_blame) | set(new_blame),
        key=lambda r: -abs(new_blame.get(r, 0.0) - old_blame.get(r, 0.0)),
    )
    lines.append(f"  {'resource':<10} {'old':>9}  {'new':>9}  {'delta':>10}")
    worst: tuple[float, str] | None = None
    for resource in resources:
        o = old_blame.get(resource, 0.0)
        n = new_blame.get(resource, 0.0)
        delta = n - o
        lines.append(
            f"  {resource:<10} {o:8.3f}s  {n:8.3f}s  {delta:+9.3f}s"
        )
        if resource != "engine" and (worst is None or delta > worst[0]):
            worst = (delta, resource)
    if worst is not None and worst[0] > 0:
        lines.append(
            f"  slowest-growing resource: {worst[1]} ({worst[0]:+.3f}s)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Chrome-trace overlay
# ---------------------------------------------------------------------- #


def to_chrome_overlay(
    payload: Mapping[str, Any], trace: Mapping[str, Any]
) -> dict[str, Any]:
    """The build's Chrome trace plus a highlighted ``critical-path`` lane.

    Every path edge becomes one complete event named by its resource on
    a dedicated tid, so chrome://tracing / Perfetto shows the path as a
    solid lane above the per-worker lanes it threads through.
    """
    events = list(trace["traceEvents"])
    used_tids = {ev.get("tid", 0) for ev in events}
    tid = max(used_tids, default=0) + 1
    out = [dict(ev) for ev in events]
    out.append({
        "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
        "args": {"name": "critical-path"},
    })
    for edge in payload["edges"]:
        out.append({
            "ph": "X",
            "name": edge["resource"],
            "cat": "critpath",
            "pid": 1,
            "tid": tid,
            "ts": int(edge["start_s"] * 1e6),
            "dur": max(0, int(edge["seconds"] * 1e6)),
            "args": {
                "src": edge["src"],
                "dst": edge["dst"],
                "detail": edge["detail"],
            },
        })
    merged = {k: v for k, v in trace.items() if k != "traceEvents"}
    merged["traceEvents"] = out
    return merged


def write_chrome_overlay(
    payload: Mapping[str, Any], trace_path: str, out_path: str
) -> str:
    """Write ``trace_path``'s events + the critical-path lane to ``out_path``."""
    events = load_chrome_trace(trace_path)
    merged = to_chrome_overlay(
        payload, {"traceEvents": events, "displayTimeUnit": "ms"}
    )
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, separators=(",", ":"))
        fh.write("\n")
    return out_path


def critpath_artifact_path(index_dir: str) -> str:
    """Where ``repro critpath`` writes its artifact for ``index_dir``."""
    return os.path.join(index_dir, CRITPATH_FILENAME)
