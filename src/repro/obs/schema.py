"""The ``run.metrics.json`` artifact: format, writer, validator.

Every telemetry-enabled build writes one ``run.metrics.json`` next to
``build.manifest``.  The payload has five top-level sections:

``schema``
    The literal string ``"repro.run.metrics/1"``.  Bump the suffix on
    incompatible changes; readers reject unknown majors.
``meta``
    Provenance: collection name, config description, engine version.
    Informational — excluded from determinism comparisons (it may carry
    host-specific paths in the future).
``counters`` / ``gauges`` / ``histograms``
    The registry's deterministic contents (see :mod:`repro.obs.metrics`).
    Identical seeded builds must produce identical values here — the
    determinism test enforces it.
``timings``
    Wall-clock measurements (stopwatch buckets, wall/cpu seconds).  The
    *only* section allowed to differ between identical seeded builds.

Validation is hand-rolled (the container has no jsonschema): the
:data:`METRICS_SCHEMA` table drives structural checks and
:func:`validate_metrics` returns a list of human-readable problems —
empty means valid.  ``repro verify`` and CI fail on a non-empty list.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "METRICS_FILENAME",
    "TRACE_FILENAME",
    "METRICS_SCHEMA_VERSION",
    "METRICS_SCHEMA",
    "build_payload",
    "validate_metrics",
    "write_metrics",
    "load_metrics",
]

METRICS_FILENAME = "run.metrics.json"
TRACE_FILENAME = "trace.json"
METRICS_SCHEMA_VERSION = "repro.run.metrics/1"

#: Top-level sections: name → (required, expected container type).
METRICS_SCHEMA: dict[str, tuple[bool, type]] = {
    "schema": (True, str),
    "meta": (False, dict),
    "counters": (True, dict),
    "gauges": (True, dict),
    "histograms": (True, dict),
    "timings": (True, dict),
}

_NUMBER = (int, float)


def build_payload(
    snapshot: Mapping[str, dict[str, Any]],
    timings: Mapping[str, float],
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a schema-conformant payload from a registry snapshot."""
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: dict(h) for name, h in snapshot.get("histograms", {}).items()
        },
        "timings": {name: float(v) for name, v in sorted(timings.items())},
    }


def validate_metrics(payload: Any) -> list[str]:
    """Structural validation; returns problems (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected an object"]

    for key, (required, expected) in METRICS_SCHEMA.items():
        if key not in payload:
            if required:
                problems.append(f"missing required section {key!r}")
            continue
        if not isinstance(payload[key], expected):
            problems.append(
                f"section {key!r} is {type(payload[key]).__name__}, "
                f"expected {expected.__name__}"
            )
    for key in payload:
        if key not in METRICS_SCHEMA:
            problems.append(f"unknown section {key!r}")
    if problems:
        return problems

    version = payload["schema"]
    major = version.rsplit("/", 1)[0]
    if major != METRICS_SCHEMA_VERSION.rsplit("/", 1)[0]:
        problems.append(
            f"schema {version!r} is not a {METRICS_SCHEMA_VERSION.rsplit('/', 1)[0]} payload"
        )
    elif version != METRICS_SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != supported {METRICS_SCHEMA_VERSION!r}"
        )

    for section in ("counters", "gauges", "timings"):
        for name, value in payload[section].items():
            if not isinstance(name, str):
                problems.append(f"{section}: non-string metric name {name!r}")
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                problems.append(
                    f"{section}.{name}: value {value!r} is not a number"
                )
            elif section == "counters" and value < 0:
                problems.append(f"counters.{name}: negative counter {value!r}")

    for name, hist in payload["histograms"].items():
        where = f"histograms.{name}"
        if not isinstance(hist, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = {"buckets", "counts", "count", "sum"} - set(hist)
        if missing:
            problems.append(f"{where}: missing key(s) {sorted(missing)}")
            continue
        buckets, counts = hist["buckets"], hist["counts"]
        if not isinstance(buckets, list) or not all(
            isinstance(b, _NUMBER) and not isinstance(b, bool) for b in buckets
        ):
            problems.append(f"{where}: buckets must be a list of numbers")
            continue
        if sorted(buckets) != buckets or len(set(buckets)) != len(buckets):
            problems.append(f"{where}: buckets must be strictly increasing")
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts
        ):
            problems.append(f"{where}: counts must be non-negative integers")
            continue
        if len(counts) != len(buckets) + 1:
            problems.append(
                f"{where}: {len(counts)} count slot(s) for {len(buckets)} "
                "bucket(s); expected len(buckets) + 1"
            )
        if sum(counts) != hist["count"]:
            problems.append(
                f"{where}: count {hist['count']} != sum of bucket counts {sum(counts)}"
            )
    return problems


def write_metrics(path: str, payload: Mapping[str, Any]) -> str:
    """Validate and write a metrics payload; returns ``path``.

    Writing an invalid payload is a programming error, not an input
    error — fail loudly rather than persist a lie.
    """
    problems = validate_metrics(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid metrics to {path}: {'; '.join(problems)}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_metrics(path: str) -> dict[str, Any]:
    """Load and validate a ``run.metrics.json``; raises on problems."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_metrics(payload)
    if problems:
        raise ValueError(f"{path}: {'; '.join(problems)}")
    return payload
