"""Continuous performance observability: the ``repro bench`` harness.

The paper's headline claim is a throughput number (262 MB/s end to end,
Figs 10–12); keeping the reproduction honest about *its own* speed needs
more than 22 free-text benchmark reports.  This module gives the repo a
pinned measurement protocol and a machine-readable perf trajectory:

- **Scenarios** — benchmark scripts under ``benchmarks/`` register
  named operations with :func:`scenario`; a scenario's prepare step
  (corpus generation, engine builds) runs once and untimed, then the
  returned :class:`BenchOp` is timed under one protocol: fixed seeds,
  ``warmup`` discarded calls, ``repetitions`` timed calls, min / median
  / IQR over the repetitions (median and IQR because indexing times on
  shared machines are skewed — a mean would let one page-cache hiccup
  fake a regression).
- **Results** — one ``BENCH_PR6.json`` per run (schema
  ``repro.bench.result/1``, :mod:`repro.obs.bench_schema`), carrying
  the machine fingerprint in the same shape pytest-benchmark wrote into
  ``BENCH_BASELINE.json`` and, per scenario, the build's
  ``run.metrics.json`` per-stage timing summary — so a regression is
  *localized* (parse vs index vs merge), not just detected.
- **Gate** — :func:`regression_gate` is deliberately noise-aware: a
  scenario regresses only when its median slows by more than
  ``max(rel_threshold · old_median, noise_mult · max(old_IQR, new_IQR))``.
  The IQR term is the measured noise floor of the two runs themselves,
  so a quiet scenario gets a tight gate and a jittery one does not page
  anyone.  ``repro stats --diff --fail-on-regress`` reuses the same
  primitive for in-build stage timings.
- **Trajectory** — every ``BENCH_*.json`` at the repo root is one point
  in the perf history; :func:`render_trajectory` renders the
  scenario × result-file median table with sparklines.

Like the rest of :mod:`repro.obs`, importing this module never pulls in
the engine; scenario *execution* does, inside :class:`BenchContext`.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Iterable, Mapping

from repro.obs.bench_schema import BENCH_SCHEMA_VERSION, validate_bench, write_bench
from repro.obs.profile import (
    DEFAULT_PROFILE_INTERVAL_S,
    Profile,
    SamplingProfiler,
    self_seconds,
    top_regressed,
)
from repro.util.ascii_chart import sparkline
from repro.util.fmt import render_table
from repro.util.timing import now

__all__ = [
    "BenchOp",
    "Scenario",
    "BenchContext",
    "scenario",
    "registered_scenarios",
    "clear_scenarios",
    "load_scenario_modules",
    "DEFAULT_SUITE",
    "machine_fingerprint",
    "commit_fingerprint",
    "run_suite",
    "load_results",
    "regression_gate",
    "compare_results",
    "render_trajectory",
    "find_result_files",
]

#: The declared suite: benchmark modules whose import registers the
#: cross-PR scenarios.  Order is presentation order in the result file.
DEFAULT_SUITE = (
    "bench_fig10_parsers",
    "bench_fig11_scalability",
    "bench_fig12_comparison",
    "bench_exec_backends",
    "bench_merge",
    "bench_search",
)

#: Default measurement protocol — changing these changes what a
#: "comparable" result means, so they are named constants, not argparse
#: defaults (docs/OBSERVABILITY.md, "Benchmark protocol").
DEFAULT_SEED = 1234
DEFAULT_WARMUP = 1
DEFAULT_REPETITIONS = 5
DEFAULT_SCALE = 0.25
DEFAULT_REL_THRESHOLD = 0.10
DEFAULT_NOISE_MULT = 1.5

#: ``run_suite(profile=True)``: how many self-time frames each scenario
#: records.  Enough for a regression hint; small enough that the result
#: file stays a diff-able artifact, not a database.
PROFILE_TOP_FRAMES = 25


# ---------------------------------------------------------------------- #
# Scenario registry
# ---------------------------------------------------------------------- #


@dataclass
class BenchOp:
    """What a scenario's prepare step hands back to the harness.

    ``op`` is the zero-argument operation the protocol times.
    ``stage_timings`` localizes regressions: either a ready dict or a
    callable applied to the *last* timed ``op()`` return value, producing
    ``{stage name: seconds}`` (typically the ``timings`` section of the
    build's ``run.metrics.json``, or the simulator's stage breakdown).
    ``bytes_processed`` (uncompressed input bytes per call) turns the
    median into a MB/s figure in the result file.
    """

    op: Callable[[], Any]
    bytes_processed: int | None = None
    stage_timings: (
        Mapping[str, float] | Callable[[Any], Mapping[str, float]] | None
    ) = None


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    prepare: Callable[["BenchContext"], BenchOp]
    group: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, Scenario] = {}


def scenario(
    name: str, group: str = "", **params: Any
) -> Callable[[Callable[["BenchContext"], BenchOp]], Callable[["BenchContext"], BenchOp]]:
    """Register a scenario prepare function under ``name``.

    Re-registration replaces (module reloads during discovery are
    normal); names are globally unique so the trajectory can track one
    scenario across every result file.
    """

    def decorate(
        prepare: Callable[["BenchContext"], BenchOp],
    ) -> Callable[["BenchContext"], BenchOp]:
        _REGISTRY[name] = Scenario(name=name, prepare=prepare, group=group, params=params)
        return prepare

    return decorate


def registered_scenarios() -> dict[str, Scenario]:
    """Name → scenario, in registration order."""
    return dict(_REGISTRY)


def clear_scenarios() -> None:
    """Reset the registry (tests)."""
    _REGISTRY.clear()


def load_scenario_modules(
    bench_dir: str, modules: Iterable[str] = DEFAULT_SUITE
) -> list[str]:
    """Import the declared suite from ``bench_dir``, registering scenarios.

    ``bench_dir`` is put on ``sys.path`` so the scripts' ``from conftest
    import report`` keeps resolving exactly as it does under pytest.
    Returns the module names imported (or already present).
    """
    bench_dir = os.path.abspath(bench_dir)
    if not os.path.isdir(bench_dir):
        raise FileNotFoundError(bench_dir)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import importlib

    loaded: list[str] = []
    for name in modules:
        if not os.path.exists(os.path.join(bench_dir, name + ".py")):
            raise FileNotFoundError(
                f"declared benchmark module {name!r} not found in {bench_dir}"
            )
        importlib.import_module(name)
        loaded.append(name)
    return loaded


# ---------------------------------------------------------------------- #
# Shared prepare-step context (cached corpora and builds)
# ---------------------------------------------------------------------- #


class BenchContext:
    """Cached corpora / builds shared by every scenario's prepare step.

    Mirrors ``benchmarks/conftest.py``'s session fixtures for the CLI
    path: the mini ClueWeb corpus and one functional engine build are
    materialized once under ``data_dir`` (default ``.bench_data``) and
    reused, so per-repetition timing measures the operation, not the
    fixtures.  Everything derives from ``seed`` and ``scale`` — the
    protocol pins both.
    """

    def __init__(
        self,
        data_dir: str,
        scale: float = DEFAULT_SCALE,
        seed: int = DEFAULT_SEED,
        sample_fraction: float = 0.05,
    ) -> None:
        self.data_dir = os.path.abspath(data_dir)
        self.scale = scale
        self.seed = seed
        self.sample_fraction = sample_fraction
        self._collection: Any = None
        self._engine_result: Any = None

    # -- working directories ------------------------------------------- #

    def _root(self) -> str:
        tag = f"bench_s{self.scale:g}_seed{self.seed}"
        path = os.path.join(self.data_dir, tag)
        os.makedirs(path, exist_ok=True)
        return path

    def fresh_dir(self, name: str) -> str:
        """An empty scratch directory under the context root."""
        import shutil

        path = os.path.join(self._root(), name)
        shutil.rmtree(path, ignore_errors=True)
        return path

    # -- cached fixtures ----------------------------------------------- #

    def mini_collection(self) -> Any:
        """The ClueWeb09-profile mini collection (generated once)."""
        if self._collection is None:
            from repro.corpus.datasets import clueweb09_mini

            self._collection = clueweb09_mini(
                self._root(), scale=self.scale, seed=self.seed
            )
        return self._collection

    def engine_build(self) -> Any:
        """One cached functional engine build over :meth:`mini_collection`."""
        if self._engine_result is None:
            from repro.core.config import PlatformConfig
            from repro.core.engine import IndexingEngine

            out = self.fresh_dir("engine_out")
            engine = IndexingEngine(
                PlatformConfig(sample_fraction=self.sample_fraction)
            )
            self._engine_result = engine.build(self.mini_collection(), out)
        return self._engine_result

    def build_config(self, **overrides: Any) -> Any:
        from repro.core.config import PlatformConfig

        overrides.setdefault("sample_fraction", self.sample_fraction)
        return PlatformConfig(**overrides)

    # -- stage-timing summaries ---------------------------------------- #

    def build_stage_timings(self, result: Any = None) -> dict[str, float]:
        """The ``timings`` section of a build's ``run.metrics.json``."""
        from repro.obs.schema import load_metrics

        result = result if result is not None else self.engine_build()
        if result.metrics_path is None:
            return {}
        return {
            name: float(v)
            for name, v in load_metrics(result.metrics_path)["timings"].items()
        }

    def simulated_stage_timings(
        self, works: Any = None, config: Any = None
    ) -> dict[str, float]:
        """Per-stage seconds from the calibrated pipeline simulation.

        Simulation scenarios have no ``run.metrics.json``; their stage
        summary is the simulator's own breakdown, prefixed ``sim.`` so a
        trajectory diff never confuses modeled with measured seconds.
        """
        from repro.core.pipeline import simulate_full_build
        from repro.core.workload import WorkloadModel

        if works is None:
            works = WorkloadModel.paper_scale("clueweb09").files()
        if config is None:
            config = self.build_config()
        report = simulate_full_build(works, config)
        return {
            "sim.sampling": report.sampling_s,
            "sim.parsers": report.pipeline.parser_finish_s,
            "sim.indexers": report.pipeline.indexer_finish_s,
            "sim.dict_combine": report.dict_combine_s,
            "sim.dict_write": report.dict_write_s,
            "sim.total": report.total_s,
        }


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #


def machine_fingerprint() -> dict[str, Any]:
    """Host fingerprint, in ``BENCH_BASELINE.json``'s ``machine_info`` shape.

    Uses py-cpuinfo when importable (what pytest-benchmark used for the
    baseline); otherwise degrades to :mod:`platform` with the same keys,
    so comparisons across the two collectors still line up.
    """
    uname = platform.uname()
    info: dict[str, Any] = {
        "node": uname.node,
        "processor": uname.processor,
        "machine": uname.machine,
        "python_implementation": platform.python_implementation(),
        "python_version": platform.python_version(),
        "release": uname.release,
        "system": uname.system,
    }
    cpu: dict[str, Any] = {"count": os.cpu_count()}
    try:
        import cpuinfo  # type: ignore[import-untyped]

        cpu.update(cpuinfo.get_cpu_info())
    except ImportError:
        cpu.update({"arch_string_raw": uname.machine, "brand_raw": uname.processor})
    # The flags list is hundreds of entries of noise for our purposes.
    cpu.pop("flags", None)
    info["cpu"] = cpu
    return info


def commit_fingerprint(cwd: str | None = None) -> dict[str, Any]:
    """Best-effort git provenance (empty dict outside a repo)."""

    def git(*argv: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, cwd=cwd, timeout=10
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout.strip() if proc.returncode == 0 else None

    commit = git("rev-parse", "HEAD")
    if commit is None:
        return {}
    status = git("status", "--porcelain")
    return {
        "id": commit,
        "branch": git("rev-parse", "--abbrev-ref", "HEAD") or "",
        "dirty": bool(status),
    }


# ---------------------------------------------------------------------- #
# The measurement protocol
# ---------------------------------------------------------------------- #


def _quartiles(samples: list[float]) -> tuple[float, float, float]:
    """(q1, median, q3) by linear interpolation on the sorted samples.

    The "inclusive" method: exact at the data points, defined from one
    sample up — the protocol's floor is 3 repetitions, where q1/q3 fall
    halfway into the first/last gap.
    """
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(p: float) -> float:
        pos = p * last
        lo = int(pos)
        hi = min(lo + 1, last)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return at(0.25), at(0.5), at(0.75)


def _scenario_stats(seconds: list[float]) -> dict[str, float]:
    q1, median, q3 = _quartiles(seconds)
    return {
        "min": min(seconds),
        "max": max(seconds),
        "mean": sum(seconds) / len(seconds),
        "median": median,
        "q1": q1,
        "q3": q3,
        "iqr": q3 - q1,
    }


def run_suite(
    scenarios: Mapping[str, Scenario] | None = None,
    *,
    data_dir: str = ".bench_data",
    repetitions: int = DEFAULT_REPETITIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    only: Iterable[str] | None = None,
    progress: Callable[[str], None] | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """Run scenarios under the pinned protocol; returns a validated payload.

    ``only`` filters by exact scenario name (unknown names raise — a CI
    job that silently measures nothing is worse than one that fails).

    ``profile=True`` samples each scenario's *timed* repetitions with the
    sampling profiler and records the top self-time frames per scenario,
    which lets :func:`compare_results` localize a regression to the
    offending function instead of just a stage.  The warmup call stays
    unsampled so profiling cannot perturb what the protocol times
    beyond the sampler's own ≤ 5% budget.
    """
    if repetitions < 3:
        raise ValueError(
            f"protocol floor is 3 timed repetitions (IQR needs spread), got {repetitions}"
        )
    if warmup < 0:
        raise ValueError(f"negative warmup {warmup}")
    registry = dict(scenarios if scenarios is not None else _REGISTRY)
    if only is not None:
        wanted = list(only)
        unknown = [n for n in wanted if n not in registry]
        if unknown:
            raise KeyError(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(registered: {', '.join(registry) or 'none'})"
            )
        registry = {n: registry[n] for n in wanted}
    if not registry:
        raise ValueError("no scenarios registered — load the suite first")

    ctx = BenchContext(data_dir, scale=scale, seed=seed)
    entries: list[dict[str, Any]] = []
    for name, sc in registry.items():
        if progress is not None:
            progress(f"[{len(entries) + 1}/{len(registry)}] {name}")
        spec = sc.prepare(ctx)
        for _ in range(warmup):
            spec.op()
        sampler: SamplingProfiler | None = None
        if profile:
            sampler = SamplingProfiler(DEFAULT_PROFILE_INTERVAL_S, lane=name)
            sampler.start()
        seconds: list[float] = []
        last: Any = None
        try:
            for _ in range(repetitions):
                t0 = now()
                last = spec.op()
                seconds.append(now() - t0)
        finally:
            if sampler is not None:
                sampler.stop()
        timings = spec.stage_timings
        if callable(timings):
            timings = timings(last)
        stats = _scenario_stats(seconds)
        entry: dict[str, Any] = {
            "name": name,
            "group": sc.group,
            "params": dict(sc.params),
            "warmup": warmup,
            "repetitions": repetitions,
            "seconds": seconds,
            "stats": stats,
            "stage_timings": {k: float(v) for k, v in (timings or {}).items()},
        }
        if spec.bytes_processed is not None:
            entry["bytes_processed"] = int(spec.bytes_processed)
            entry["throughput_mbps"] = (
                spec.bytes_processed / 1e6 / stats["median"]
                if stats["median"] > 0
                else 0.0
            )
        if sampler is not None:
            merged = Profile(sampler.interval_s)
            merged.absorb(sampler.drain_delta())
            prof_payload = merged.to_payload()
            self_map = self_seconds(prof_payload)
            top = sorted(self_map.items(), key=lambda kv: (-kv[1], kv[0]))
            entry["profile"] = {
                "interval_s": sampler.interval_s,
                "samples": sum(
                    lane["samples"] for lane in prof_payload["lanes"].values()
                ),
                "self_s": dict(top[:PROFILE_TOP_FRAMES]),
            }
            # When the scenario's op returns an EngineResult (build
            # scenarios do), summarize the last repetition's critical
            # path so --compare can localize a slowdown to a *resource*
            # (ring-wait vs index CPU), not just a function.
            trace_path = getattr(last, "trace_path", None)
            if trace_path:
                try:
                    from repro.obs.critpath import summarize_for_bench

                    entry["critical_path"] = summarize_for_bench(trace_path)
                except (OSError, ValueError):
                    pass  # trace unreadable/foreign: skip the block
        entries.append(entry)

    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "machine_info": machine_fingerprint(),
        "commit_info": commit_fingerprint(),
        "created": datetime.now(timezone.utc).isoformat(),
        "protocol": {
            "seed": seed,
            "warmup": warmup,
            "repetitions": repetitions,
            "scale": scale,
        },
        "scenarios": entries,
    }
    problems = validate_bench(payload)
    if problems:  # pragma: no cover - harness bug, not input error
        raise ValueError(f"harness produced an invalid payload: {'; '.join(problems)}")
    return payload


def write_results(path: str, payload: Mapping[str, Any]) -> str:
    """Alias of :func:`repro.obs.bench_schema.write_bench` for callers here."""
    return write_bench(path, payload)


# ---------------------------------------------------------------------- #
# Loading results (native + pytest-benchmark formats)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's normalized statistics from a result file."""

    name: str
    median: float
    min: float
    iqr: float
    repetitions: int
    stage_timings: Mapping[str, float] = field(default_factory=dict)
    throughput_mbps: float | None = None
    #: The scenario's sampled self-time summary from a ``--profile``
    #: run (``{"interval_s", "samples", "self_s": {frame: seconds}}``),
    #: or ``None`` for unprofiled results.
    profile: Mapping[str, Any] | None = None
    #: Per-resource critical-path summary (``{"backend", "wall_s",
    #: "path_s", "blame_s": {resource: s}, "top_resource"}``) from a
    #: ``--profile`` run of a build scenario, or ``None``.
    critical_path: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class BenchResults:
    """A normalized result file, either format."""

    path: str
    label: str
    format: str  # "repro.bench.result/1" or "pytest-benchmark"
    machine_info: Mapping[str, Any]
    protocol: Mapping[str, Any]
    scenarios: Mapping[str, ScenarioResult]


def _label_of(path: str) -> str:
    base = os.path.basename(path)
    if base.endswith(".json"):
        base = base[: -len(".json")]
    if base.startswith("BENCH_"):
        base = base[len("BENCH_"):]
    return base


def load_results(path: str) -> BenchResults:
    """Load and normalize either result format.

    Native files are schema-validated; pytest-benchmark files
    (``BENCH_BASELINE.json``) are recognized by their ``benchmarks``
    list and mapped onto the same statistics, so the trajectory and the
    compare gate treat the pre-harness baseline as just another point.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)

    if isinstance(payload, dict) and "benchmarks" in payload and "schema" not in payload:
        scenarios: dict[str, ScenarioResult] = {}
        for entry in payload["benchmarks"]:
            stats = entry.get("stats") or {}
            name = entry.get("name", "?")
            scenarios[name] = ScenarioResult(
                name=name,
                median=float(stats.get("median", 0.0)),
                min=float(stats.get("min", 0.0)),
                iqr=float(stats.get("iqr", 0.0)),
                repetitions=int(stats.get("rounds", 0)),
            )
        return BenchResults(
            path=path,
            label=_label_of(path),
            format="pytest-benchmark",
            machine_info=payload.get("machine_info") or {},
            protocol={},
            scenarios=scenarios,
        )

    problems = validate_bench(payload)
    if problems:
        raise ValueError(f"{path}: {'; '.join(problems)}")
    scenarios = {}
    for entry in payload["scenarios"]:
        stats = entry["stats"]
        scenarios[entry["name"]] = ScenarioResult(
            name=entry["name"],
            median=float(stats["median"]),
            min=float(stats["min"]),
            iqr=float(stats["iqr"]),
            repetitions=int(entry["repetitions"]),
            stage_timings=dict(entry.get("stage_timings") or {}),
            throughput_mbps=entry.get("throughput_mbps"),
            profile=entry.get("profile"),
            critical_path=entry.get("critical_path"),
        )
    return BenchResults(
        path=path,
        label=_label_of(path),
        format=payload["schema"],
        machine_info=payload["machine_info"],
        protocol=payload["protocol"],
        scenarios=scenarios,
    )


# ---------------------------------------------------------------------- #
# The noise-aware gate
# ---------------------------------------------------------------------- #


def regression_gate(
    old: float,
    new: float,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    noise_floor: float = 0.0,
) -> bool:
    """Did ``new`` worsen past ``max(rel_threshold · old, noise_floor)``?

    The single primitive both gates share (``repro bench --compare`` and
    ``repro stats --diff --fail-on-regress``): a slowdown must clear a
    *relative* bar (small regressions on big numbers matter) **and** the
    measured noise floor (so jitter can never fail a build on its own).
    Values are "lower is better" seconds/counts.
    """
    return (new - old) > max(rel_threshold * old, noise_floor)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.3f}ms"


def _worst_stage(
    old: Mapping[str, float], new: Mapping[str, float]
) -> str | None:
    """The stage whose absolute slowdown dominates — the localization hint."""
    worst: tuple[float, str] | None = None
    for stage in set(old) | set(new):
        delta = new.get(stage, 0.0) - old.get(stage, 0.0)
        if worst is None or delta > worst[0]:
            worst = (delta, stage)
    if worst is None or worst[0] <= 0:
        return None
    delta, stage = worst
    base = old.get(stage, 0.0)
    pct = f" ({delta / base * 100:+.0f}%)" if base > 0 else ""
    return f"{stage} +{_fmt_s(delta)}{pct}"


def _worst_function(
    old_prof: Mapping[str, Any] | None, new_prof: Mapping[str, Any] | None
) -> str | None:
    """Function-level localization from ``--profile`` self-time tables.

    Only fires when *both* results carry a profile — comparing a
    profiled run against an unprofiled baseline would attribute the
    whole scenario to every frame.
    """
    if not old_prof or not new_prof:
        return None
    rows = top_regressed(
        old_prof.get("self_s") or {}, new_prof.get("self_s") or {}, n=1
    )
    if not rows:
        return None
    frame, old_s, new_s, delta = rows[0]
    return f"{frame} +{_fmt_s(delta)} self ({_fmt_s(old_s)} -> {_fmt_s(new_s)})"


def _worst_resource(
    old_cp: Mapping[str, Any] | None, new_cp: Mapping[str, Any] | None
) -> str | None:
    """Resource-level localization from critical-path blame tables.

    Names the resource whose critical-path seconds grew the most
    (ring-wait vs index CPU vs flush) — the causal complement to
    :func:`_worst_function`'s symptom-level answer.  Fires only when
    both results carry a ``critical_path`` block.
    """
    if not old_cp or not new_cp:
        return None
    old_blame = old_cp.get("blame_s") or {}
    new_blame = new_cp.get("blame_s") or {}
    worst: tuple[float, str] | None = None
    for resource in set(old_blame) | set(new_blame):
        delta = new_blame.get(resource, 0.0) - old_blame.get(resource, 0.0)
        if worst is None or delta > worst[0]:
            worst = (delta, resource)
    if worst is None or worst[0] <= 0:
        return None
    delta, resource = worst
    return (
        f"{resource} +{_fmt_s(delta)} on the critical path "
        f"({_fmt_s(old_blame.get(resource, 0.0))} -> "
        f"{_fmt_s(new_blame.get(resource, 0.0))})"
    )


@dataclass
class Comparison:
    """Outcome of comparing two result files."""

    text: str
    regressions: list[str]
    warnings: list[str]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_results(
    old: BenchResults,
    new: BenchResults,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    noise_mult: float = DEFAULT_NOISE_MULT,
) -> Comparison:
    """Gate ``new`` against ``old`` scenario by scenario.

    Scenarios present in only one file are reported (``new``/``gone``)
    but never gate — renaming a scenario must not masquerade as a perf
    win.  Machine/protocol mismatches demote nothing either; they are
    surfaced as warnings because a cross-machine "regression" is
    meaningless.
    """
    warnings: list[str] = []
    old_cpu = (old.machine_info.get("cpu") or {}).get("brand_raw")
    new_cpu = (new.machine_info.get("cpu") or {}).get("brand_raw")
    if old_cpu and new_cpu and old_cpu != new_cpu:
        warnings.append(
            f"machine mismatch: {old_cpu!r} vs {new_cpu!r} — medians are "
            "not comparable across hosts"
        )
    for key in ("seed", "scale", "repetitions"):
        a, b = old.protocol.get(key), new.protocol.get(key)
        if a is not None and b is not None and a != b:
            warnings.append(f"protocol mismatch: {key} {a!r} vs {b!r}")

    names = sorted(set(old.scenarios) | set(new.scenarios))
    rows: list[list[object]] = []
    regressions: list[str] = []
    localizations: list[str] = []
    for name in names:
        o, n = old.scenarios.get(name), new.scenarios.get(name)
        if o is None or n is None:
            rows.append([
                name,
                _fmt_s(o.median) if o else "—",
                _fmt_s(n.median) if n else "—",
                "", "",
                "new" if o is None else "gone",
            ])
            continue
        noise_floor = noise_mult * max(o.iqr, n.iqr)
        delta_pct = (n.median - o.median) / o.median * 100 if o.median else 0.0
        if regression_gate(o.median, n.median, rel_threshold, noise_floor):
            verdict = "REGRESSED"
            regressions.append(name)
            hint = _worst_stage(o.stage_timings, n.stage_timings)
            if hint:
                localizations.append(f"  {name}: slowest-growing stage {hint}")
            fhint = _worst_function(o.profile, n.profile)
            if fhint:
                localizations.append(
                    f"  {name}: top regressed function {fhint}"
                )
            rhint = _worst_resource(o.critical_path, n.critical_path)
            if rhint:
                localizations.append(
                    f"  {name}: slowest-growing resource {rhint}"
                )
        elif o.median - n.median > max(rel_threshold * o.median, noise_floor):
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append([
            name,
            _fmt_s(o.median),
            _fmt_s(n.median),
            f"{delta_pct:+.1f}%",
            _fmt_s(noise_floor),
            verdict,
        ])

    lines = [f"compare: {old.label} -> {new.label}  "
             f"(gate: median slowdown > max({rel_threshold * 100:.0f}%, "
             f"{noise_mult:g}×IQR))"]
    lines.extend(f"warning: {w}" for w in warnings)
    lines.append("")
    lines.append(render_table(
        ["scenario", old.label, new.label, "Δ median", "noise floor", "verdict"],
        rows,
    ))
    if localizations:
        lines.append("")
        lines.append("regression localization (stage timings + profiles):")
        lines.extend(localizations)
    lines.append("")
    if regressions:
        lines.append(
            f"{len(regressions)} scenario(s) regressed: {', '.join(regressions)}"
        )
    else:
        lines.append("no regressions")
    return Comparison(text="\n".join(lines), regressions=regressions, warnings=warnings)


# ---------------------------------------------------------------------- #
# Trajectory
# ---------------------------------------------------------------------- #


_PR_FILE_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def find_result_files(root: str) -> list[str]:
    """Every ``BENCH_*.json`` under ``root``, in trajectory order.

    The baseline anchors the trajectory; ``BENCH_PR<N>`` files follow in
    *numeric* PR order (lexicographic sorting would put ``PR10`` before
    ``PR5``); anything else trails alphabetically.
    """
    def key(path: str) -> tuple[int, int, str]:
        base = os.path.basename(path)
        if base == "BENCH_BASELINE.json":
            return (0, 0, base)
        m = _PR_FILE_RE.match(base)
        if m:
            return (1, int(m.group(1)), base)
        return (2, 0, base)

    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")), key=key)


def render_trajectory(root: str) -> str:
    """The scenario × result-file median table over ``BENCH_*.json``.

    Cells are medians; ``·`` marks a scenario absent from that run
    (pre-harness baselines and future suite growth both produce holes).
    Unreadable files are noted and skipped, never fatal — one corrupt
    artifact must not hide the rest of the history.
    """
    notes: list[str] = []
    results: list[BenchResults] = []
    for path in find_result_files(root):
        try:
            results.append(load_results(path))
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            notes.append(f"note: skipped unreadable {os.path.basename(path)}: {exc}")
    if not results:
        return "\n".join(notes + [f"(no BENCH_*.json files under {root})"])

    names = sorted({n for r in results for n in r.scenarios})
    rows: list[list[object]] = []
    for name in names:
        cells: list[object] = [name]
        series: list[float] = []
        for r in results:
            sr = r.scenarios.get(name)
            cells.append(_fmt_s(sr.median) if sr else "·")
            if sr:
                series.append(sr.median)
        cells.append(sparkline(series) if len(series) >= 2 else "")
        rows.append(cells)
    table = render_table(
        ["scenario (median)"] + [r.label for r in results] + ["trend"], rows
    )
    header = f"perf trajectory over {len(results)} result file(s) in {root}:"
    return "\n".join(notes + [header, "", table])
