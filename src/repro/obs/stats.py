"""Trace and metrics summarization for ``repro trace`` / ``repro stats``.

Pure functions from telemetry artifacts to numbers and ASCII renderings:

- :func:`spans_from_chrome` — rebuild :class:`~repro.obs.trace.Span`
  records from an exported Chrome trace (the on-disk form);
- :func:`span_coverage` — fraction of the root span's wall time covered
  by instrumented child spans (the acceptance gate: ≥ 95%);
- :func:`lane_utilization` / :func:`stage_totals` — the per-worker and
  per-stage aggregates behind the utilization chart;
- :func:`render_trace_summary` — the ``repro trace`` report, using
  :mod:`repro.util.ascii_chart` for the bars;
- :func:`render_metrics_summary` / :func:`render_metrics_diff` — the
  ``repro stats`` report and the two-run regression-triage diff;
- :func:`metrics_regressions` — the ``--fail-on-regress`` gate behind
  ``repro stats --diff``, sharing
  :func:`repro.obs.bench.regression_gate` with ``repro bench --compare``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.trace import Span
from repro.util.ascii_chart import bar_chart

__all__ = [
    "spans_from_chrome",
    "interval_union_s",
    "span_coverage",
    "lane_utilization",
    "stage_totals",
    "render_trace_summary",
    "render_metrics_summary",
    "render_metrics_diff",
    "metrics_regressions",
]


def spans_from_chrome(events: Iterable[Mapping[str, Any]]) -> list[Span]:
    """Complete ("X") events back into :class:`Span` records.

    Lane names come from the ``thread_name`` metadata events the
    exporter always writes; an unlabelled tid falls back to ``tid-N``.
    Nesting depth/parent are not persisted in the Chrome format and are
    reconstructed as 0/None — the summaries here only need intervals.
    """
    events = list(events)
    lane_names: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            lane_names[ev.get("tid", 0)] = ev.get("args", {}).get("name", "")
    spans: list[Span] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        tid = ev.get("tid", 0)
        start = ev["ts"] / 1e6
        spans.append(
            Span(
                name=ev["name"],
                cat=ev.get("cat", ""),
                lane=lane_names.get(tid) or f"tid-{tid}",
                start_s=start,
                end_s=start + ev["dur"] / 1e6,
                depth=0,
                parent=None,
                args=dict(ev.get("args", {})),
            )
        )
    spans.sort(key=lambda s: (s.start_s, s.end_s))
    return spans


def interval_union_s(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    merged = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if cur_start is None or start > cur_end:
            if cur_start is not None:
                merged += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_start is not None:
        merged += cur_end - cur_start
    return merged


def _root(spans: list[Span], root_name: str) -> Span | None:
    candidates = [s for s in spans if s.name == root_name]
    if not candidates:
        return None
    return max(candidates, key=lambda s: s.duration_s)


def span_coverage(spans: list[Span], root_name: str = "build") -> float:
    """Fraction of the root span's duration covered by other spans.

    The union of every non-root span interval, clipped to the root span,
    over the root's duration.  This is the number the acceptance
    criterion bounds (≥ 0.95): time inside the build that no span
    accounts for is invisible to triage.
    """
    root = _root(spans, root_name)
    if root is None or root.duration_s <= 0:
        return 0.0
    clipped = [
        (max(s.start_s, root.start_s), min(s.end_s, root.end_s))
        for s in spans
        if s is not root
    ]
    return min(1.0, interval_union_s(clipped) / root.duration_s)


def lane_utilization(
    spans: list[Span], root_name: str = "build"
) -> dict[str, float]:
    """Per-lane busy fraction of the root span's wall time."""
    root = _root(spans, root_name)
    if root is None or root.duration_s <= 0:
        return {}
    lanes: dict[str, list[tuple[float, float]]] = {}
    for s in spans:
        if s is root:
            continue
        lanes.setdefault(s.lane, []).append(
            (max(s.start_s, root.start_s), min(s.end_s, root.end_s))
        )
    return {
        lane: interval_union_s(iv) / root.duration_s
        for lane, iv in sorted(lanes.items())
    }


def stage_totals(spans: list[Span]) -> dict[str, tuple[int, float]]:
    """Per span-name ``(count, total seconds)``, busiest first."""
    totals: dict[str, tuple[int, float]] = {}
    for s in spans:
        count, seconds = totals.get(s.name, (0, 0.0))
        totals[s.name] = (count + 1, seconds + s.duration_s)
    return dict(
        sorted(totals.items(), key=lambda kv: kv[1][1], reverse=True)
    )


def render_trace_summary(spans: list[Span], root_name: str = "build") -> str:
    """The ``repro trace`` report: coverage, lane chart, stage table."""
    if not spans:
        return "(empty trace)"
    root = _root(spans, root_name)
    lines: list[str] = []
    if root is not None:
        lines.append(
            f"root span {root.name!r}: {root.duration_s:.3f}s wall, "
            f"{len(spans)} span(s), "
            f"coverage {span_coverage(spans, root_name) * 100:.1f}%"
        )
    else:
        lines.append(f"(no {root_name!r} root span; {len(spans)} span(s))")

    util = lane_utilization(spans, root_name)
    if util:
        lines.append("")
        lines.append("lane utilization (% of build wall time):")
        lines.append(bar_chart({k: v * 100 for k, v in util.items()}, unit="%"))

    lines.append("")
    lines.append("stage totals:")
    totals = stage_totals(spans)
    name_w = max(len(n) for n in totals)
    for name, (count, seconds) in totals.items():
        lines.append(f"  {name.ljust(name_w)}  {count:6d} span(s)  {seconds:10.4f}s")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Metrics rendering
# ---------------------------------------------------------------------- #


def render_metrics_summary(payload: Mapping[str, Any]) -> str:
    """Human-readable dump of one ``run.metrics.json`` payload."""
    lines: list[str] = [f"schema: {payload.get('schema')}"]
    meta = payload.get("meta") or {}
    for key in sorted(meta):
        lines.append(f"meta.{key}: {meta[key]}")
    for section in ("counters", "gauges"):
        table = payload.get(section) or {}
        if table:
            lines.append(f"\n{section}:")
            name_w = max(len(n) for n in table)
            for name in sorted(table):
                value = table[name]
                shown = f"{value:.6g}" if isinstance(value, float) else f"{value:,}"
                lines.append(f"  {name.ljust(name_w)}  {shown}")
    hists = payload.get("histograms") or {}
    if hists:
        lines.append("\nhistograms:")
        for name in sorted(hists):
            h = hists[name] or {}
            lines.append(
                f"  {name}: n={h.get('count', 0):,} sum={h.get('sum', 0):,} "
                f"buckets={len(h.get('buckets') or ())}"
            )
    timings = payload.get("timings") or {}
    if timings:
        lines.append("\ntimings (wall-clock, excluded from determinism):")
        name_w = max(len(n) for n in timings)
        for name in sorted(timings):
            lines.append(f"  {name.ljust(name_w)}  {timings[name]:.4f}s")

    # Derived throughput, guarded for zero-wall / empty-corpus builds: an
    # empty collection legitimately produces wall_seconds ≈ 0 and zero
    # bytes, and the summary must degrade to "0.00 MB/s", never divide.
    wall = timings.get("wall_seconds")
    if wall is not None:
        # An empty-corpus build never increments the parse counter at
        # all — treat the absent counter as zero bytes, same degradation.
        bytes_in = (payload.get("counters") or {}).get(
            "parse.uncompressed_bytes", 0
        )
        mbps = bytes_in / 1e6 / wall if wall > 0 else 0.0
        note = "" if wall > 0 and bytes_in > 0 else "  (empty or zero-wall build)"
        lines.append(f"\nderived measured throughput: {mbps:.2f} MB/s{note}")
    return "\n".join(lines)


def render_metrics_diff(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    before_label: str = "before",
    after_label: str = "after",
) -> str:
    """Two-run regression triage: per-stage timing and counter deltas."""
    lines: list[str] = [f"diff: {before_label} -> {after_label}"]

    t_before = before.get("timings") or {}
    t_after = after.get("timings") or {}
    stages = sorted(set(t_before) | set(t_after))
    if stages:
        lines.append("\nper-stage timings (s):")
        name_w = max(len(n) for n in stages)
        for name in stages:
            a = t_before.get(name, 0.0)
            b = t_after.get(name, 0.0)
            pct = f"{(b - a) / a * 100:+7.1f}%" if a else "     new"
            lines.append(
                f"  {name.ljust(name_w)}  {a:10.4f}  ->  {b:10.4f}  {pct}"
            )

    for section in ("counters", "gauges"):
        s_before = before.get(section) or {}
        s_after = after.get(section) or {}
        changed = [
            name
            for name in sorted(set(s_before) | set(s_after))
            if s_before.get(name, 0) != s_after.get(name, 0)
        ]
        if changed:
            lines.append(f"\nchanged {section}:")
            name_w = max(len(n) for n in changed)
            for name in changed:
                a = s_before.get(name, 0)
                b = s_after.get(name, 0)
                lines.append(f"  {name.ljust(name_w)}  {a:,}  ->  {b:,}")

    if len(lines) == 1:
        lines.append("(no differences)")
    return "\n".join(lines)


def metrics_regressions(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    rel_threshold: float = 0.10,
    noise_floor_s: float = 0.01,
) -> list[str]:
    """Timing / stall regressions between two ``run.metrics.json`` payloads.

    The decision rule is :func:`repro.obs.bench.regression_gate` — the
    same primitive behind ``repro bench --compare`` — applied to:

    - every name the two ``timings`` sections share (``stage.*``,
      ``wall_seconds``, ``pipeline.stall.*``, ``pipeline.idle.*``), with
      ``noise_floor_s`` as the absolute floor so microsecond stages
      cannot trip a percentage gate on scheduler jitter; and
    - ``pipeline.*`` stall/idle counters and gauges (pure relative gate
      with a zero floor: a stall counter going 0 → N must fire).

    Names on only one side never gate (a stage appearing or vanishing is
    a shape change for the human-readable diff, not a slowdown).
    Returns human-readable lines, empty when nothing worsened.
    """
    from repro.obs.bench import regression_gate

    out: list[str] = []
    t_before = before.get("timings") or {}
    t_after = after.get("timings") or {}
    for name in sorted(set(t_before) & set(t_after)):
        a, b = float(t_before[name]), float(t_after[name])
        if regression_gate(a, b, rel_threshold, noise_floor_s):
            pct = f" ({(b - a) / a * 100:+.1f}%)" if a > 0 else ""
            out.append(f"timings.{name}: {a:.4f}s -> {b:.4f}s{pct}")
    for section in ("counters", "gauges"):
        s_before = before.get(section) or {}
        s_after = after.get(section) or {}
        for name in sorted(set(s_before) & set(s_after)):
            if not name.startswith("pipeline."):
                continue
            if "stall" not in name and "idle" not in name:
                continue
            a, b = float(s_before[name]), float(s_after[name])
            if regression_gate(a, b, rel_threshold, 0.0):
                out.append(f"{section}.{name}: {a:g} -> {b:g}")
    return out
