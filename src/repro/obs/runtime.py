"""Process-wide telemetry installation (mirrors ``robustness.faults``).

The deep layers that emit telemetry — checkpoint writes, the retry
wrapper, the fault injector's victims — sit far below the engine and
have no natural parameter to thread a registry through.  Like the fault
injector, telemetry is therefore *installed*: the engine (or a test)
makes a :class:`Telemetry` current for the duration of a build, and any
module can cheaply ask for it::

    from repro.obs import runtime

    runtime.count("robustness.checkpoint_saves")   # no-op when nothing
                                                   # is installed

The module-level helpers (:func:`count`, :func:`observe`) are written so
the uninstrumented path is one global read and one ``is None`` test.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.profile import Profile
from repro.obs.trace import NullTracer, Tracer

__all__ = [
    "Telemetry",
    "install",
    "uninstall",
    "current",
    "session",
    "count",
    "observe",
    "tracer",
    "metrics",
]


@dataclass
class Telemetry:
    """One build's tracer + metrics registry (+ optional merged
    profile), as a unit."""

    tracer: Tracer
    metrics: MetricsRegistry
    #: Merge target for sampling-profiler deltas when the build runs
    #: with ``--profile``; ``None`` (the default) means not profiling.
    #: Orthogonal to ``enabled``: a profiled build with telemetry off
    #: still collects samples.
    profile: Profile | None = None

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @classmethod
    def create(cls, enabled: bool = True) -> "Telemetry":
        """An armed bundle, or the near-free disabled variant."""
        if enabled:
            return cls(tracer=Tracer(), metrics=MetricsRegistry())
        return cls(tracer=NullTracer(), metrics=NullRegistry())


_current: Telemetry | None = None


def install(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process-wide current bundle."""
    global _current
    _current = telemetry
    return telemetry


def uninstall() -> None:
    """Remove the current bundle (deep-layer emissions become no-ops)."""
    global _current
    _current = None


def current() -> Telemetry | None:  # repro-lint: worker-entry
    """The installed bundle, or ``None`` (the common, zero-cost case)."""
    return _current


@contextmanager
def session(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install for a scope, restoring whatever was current before."""
    previous = current()
    install(telemetry)
    try:
        yield telemetry
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


#: Shared disabled bundle: lets call sites instrument unconditionally
#: (``obs.tracer().span(...)``) and still be near-free outside a build.
_null = Telemetry(tracer=NullTracer(), metrics=NullRegistry())


def tracer() -> Tracer:
    """The current tracer, or a shared :class:`NullTracer`."""
    t = _current
    return t.tracer if t is not None else _null.tracer


def metrics() -> MetricsRegistry:
    """The current registry, or a shared :class:`NullRegistry`."""
    t = _current
    return t.metrics if t is not None else _null.metrics


def count(name: str, amount: int | float = 1) -> None:
    """Increment a counter on the current registry, if any is installed."""
    t = _current
    if t is not None:
        t.metrics.count(name, amount)


def observe(name: str, value: int | float) -> None:
    """Observe into a default-bucket histogram on the current registry."""
    t = _current
    if t is not None:
        t.metrics.observe(name, value)
