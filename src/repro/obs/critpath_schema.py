"""The ``run.critpath.json`` artifact: format, writer, validator.

``repro critpath`` distills a build's span trace and metrics into one
causal verdict — *which resource bounds wall-clock, and what buying it
down would be worth* — and persists it next to the other observability
artifacts (docs/OBSERVABILITY.md, "Critical-path analysis").  Sections:

``schema``
    The literal string ``"repro.run.critpath/1"``.  Bump the suffix on
    incompatible changes; readers reject unknown majors.
``meta``
    Free-form provenance (collection, config description, source
    artifact paths).  Informational only.
``backend``
    Which execution backend the analyzed build ran under (``serial`` /
    ``threaded`` / ``multiprocess``) — blame semantics depend on it.
``wall_seconds`` / ``path_seconds`` / ``coverage``
    The build's wall clock, the critical-path length, and their ratio.
    The engine thread collects every file in order, so the path tracks
    the wall closely; ``coverage`` far from 1.0 means the trace was
    truncated or foreign.
``blame``
    Resource → seconds decomposition of the critical path.  Resources
    are the closed vocabulary :data:`CRITPATH_RESOURCES`; the values
    must sum to ``path_seconds`` (the validator enforces it), which is
    what makes "ring-wait is 40% of this build" a checkable claim.
``edges``
    The path itself: ordered causal edges with their interval, owning
    lane, resource and a human-readable detail — enough to re-project
    the path onto the Chrome trace as a highlighted lane.
``lanes``
    Per-lane busy seconds (interval union of that lane's compute
    spans).  The what-if projector uses them as a floor: zeroing a
    wait cannot make the build faster than its busiest worker.
``projections``
    Ranked what-if predictions: scale factors per resource, the
    recomputed path length, and the implied speedup.

Validation is hand-rolled (no jsonschema in the container), mirroring
:mod:`repro.obs.profile_schema`: :func:`validate_critpath` returns a
list of human-readable problems — empty means valid.  ``repro
critpath`` refuses to write an invalid payload and CI fails on a
non-empty list.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "CRITPATH_SCHEMA_VERSION",
    "CRITPATH_FILENAME",
    "CRITPATH_SCHEMA",
    "CRITPATH_RESOURCES",
    "validate_critpath",
    "write_critpath",
    "load_critpath",
]

CRITPATH_SCHEMA_VERSION = "repro.run.critpath/1"
CRITPATH_FILENAME = "run.critpath.json"

#: The closed blame vocabulary.  ``parse``/``index`` are compute the
#: engine was causally blocked on; ``ring-wait`` is transport overhead
#: (frame encode/enqueue/dequeue plus poll sleeps) with no concurrent
#: worker compute; ``stall`` is in-process queue/backpressure waiting;
#: ``supervisor`` is restart/replay recovery; ``flush``/``merge`` are
#: the run-flush and dictionary epilogue; ``sampling`` the assignment
#: prepass; ``engine`` the coordinator's own bookkeeping (split,
#: record_file, uninstrumented gaps).
CRITPATH_RESOURCES = (
    "sampling",
    "parse",
    "index",
    "ring-wait",
    "stall",
    "supervisor",
    "flush",
    "merge",
    "engine",
)

#: Top-level sections: name → (required, expected container type).
CRITPATH_SCHEMA: dict[str, tuple[bool, type | tuple[type, ...]]] = {
    "schema": (True, str),
    "meta": (False, dict),
    "backend": (True, str),
    "wall_seconds": (True, (int, float)),
    "path_seconds": (True, (int, float)),
    "coverage": (True, (int, float)),
    "blame": (True, dict),
    "edges": (True, list),
    "lanes": (True, dict),
    "projections": (True, list),
}

#: Keys every edge entry must carry.
EDGE_KEYS = ("src", "dst", "start_s", "end_s", "seconds", "resource", "detail")

#: Sum-vs-path tolerance: float accumulation over thousands of edges.
_SUM_TOL = 1e-6


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_edges(edges: list, problems: list[str]) -> float:
    total = 0.0
    for i, edge in enumerate(edges):
        where = f"edges[{i}]"
        if not isinstance(edge, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = [k for k in EDGE_KEYS if k not in edge]
        if missing:
            problems.append(f"{where}: missing key(s) {missing}")
            continue
        for key in ("src", "dst", "resource", "detail"):
            if not isinstance(edge[key], str):
                problems.append(f"{where}.{key}: {edge[key]!r} is not a string")
        for key in ("start_s", "end_s", "seconds"):
            if not _is_number(edge[key]):
                problems.append(f"{where}.{key}: {edge[key]!r} is not a number")
        if _is_number(edge["seconds"]):
            if edge["seconds"] < 0:
                problems.append(f"{where}: negative seconds {edge['seconds']!r}")
            else:
                total += edge["seconds"]
        if edge.get("resource") not in CRITPATH_RESOURCES:
            problems.append(
                f"{where}: unknown resource {edge.get('resource')!r} "
                f"(expected one of {', '.join(CRITPATH_RESOURCES)})"
            )
        if (
            _is_number(edge["start_s"])
            and _is_number(edge["end_s"])
            and edge["end_s"] < edge["start_s"]
        ):
            problems.append(f"{where}: end_s precedes start_s")
    return total


def _check_blame(
    blame: Mapping[str, Any], path_seconds: Any, problems: list[str]
) -> None:
    total = 0.0
    for resource, seconds in blame.items():
        if resource not in CRITPATH_RESOURCES:
            problems.append(
                f"blame: unknown resource {resource!r} "
                f"(expected one of {', '.join(CRITPATH_RESOURCES)})"
            )
        if not _is_number(seconds) or seconds < 0:
            problems.append(
                f"blame[{resource!r}]: {seconds!r} is not a non-negative number"
            )
        else:
            total += seconds
    if _is_number(path_seconds) and abs(total - path_seconds) > max(
        _SUM_TOL, _SUM_TOL * abs(path_seconds)
    ):
        problems.append(
            f"blame sums to {total!r} but path_seconds is {path_seconds!r} "
            "— the decomposition must cover the whole path"
        )


def _check_projections(projections: list, problems: list[str]) -> None:
    for i, proj in enumerate(projections):
        where = f"projections[{i}]"
        if not isinstance(proj, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(proj.get("label"), str) or not proj.get("label"):
            problems.append(f"{where}: missing or empty 'label'")
        scales = proj.get("scales")
        if not isinstance(scales, dict):
            problems.append(f"{where}: 'scales' must be an object")
        else:
            for resource, factor in scales.items():
                if resource not in CRITPATH_RESOURCES:
                    problems.append(
                        f"{where}: scales has unknown resource {resource!r}"
                    )
                if not _is_number(factor) or factor < 0:
                    problems.append(
                        f"{where}: scales[{resource!r}] {factor!r} "
                        "is not a non-negative number"
                    )
        for key in ("predicted_wall_s", "speedup"):
            if not _is_number(proj.get(key)) or proj.get(key) < 0:
                problems.append(
                    f"{where}: {key} {proj.get(key)!r} is not a "
                    "non-negative number"
                )


def validate_critpath(payload: Any) -> list[str]:
    """Structural + semantic validation; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected an object"]

    for key, (required, expected) in CRITPATH_SCHEMA.items():
        if key not in payload:
            if required:
                problems.append(f"missing required section {key!r}")
            continue
        value = payload[key]
        if not isinstance(value, expected) or isinstance(value, bool):
            expected_name = (
                "/".join(t.__name__ for t in expected)
                if isinstance(expected, tuple)
                else expected.__name__
            )
            problems.append(
                f"section {key!r} is {type(value).__name__}, "
                f"expected {expected_name}"
            )
    for key in payload:
        if key not in CRITPATH_SCHEMA:
            problems.append(f"unknown section {key!r}")
    if problems:
        return problems

    version = payload["schema"]
    major = version.rsplit("/", 1)[0]
    if major != CRITPATH_SCHEMA_VERSION.rsplit("/", 1)[0]:
        problems.append(
            f"schema {version!r} is not a "
            f"{CRITPATH_SCHEMA_VERSION.rsplit('/', 1)[0]} payload"
        )
        return problems
    if version != CRITPATH_SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != supported {CRITPATH_SCHEMA_VERSION!r}"
        )
        return problems

    for key in ("wall_seconds", "path_seconds", "coverage"):
        if payload[key] < 0:
            problems.append(f"{key} is negative")

    edge_total = _check_edges(payload["edges"], problems)
    _check_blame(payload["blame"], payload["path_seconds"], problems)
    if payload["edges"] and abs(edge_total - payload["path_seconds"]) > max(
        _SUM_TOL, _SUM_TOL * abs(payload["path_seconds"])
    ):
        problems.append(
            f"edges sum to {edge_total!r} but path_seconds is "
            f"{payload['path_seconds']!r}"
        )

    for lane, busy in payload["lanes"].items():
        if not isinstance(lane, str):
            problems.append(f"lanes: non-string lane name {lane!r}")
        if not _is_number(busy) or busy < 0:
            problems.append(
                f"lanes[{lane!r}]: {busy!r} is not a non-negative number"
            )

    _check_projections(payload["projections"], problems)
    return problems


def write_critpath(path: str, payload: Mapping[str, Any]) -> str:
    """Validate and write a critpath payload; returns ``path``.

    Writing an invalid payload is a programming error, not an input
    error — fail loudly rather than persist a lie.
    """
    problems = validate_critpath(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid critpath result to {path}: "
            f"{'; '.join(problems)}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_critpath(path: str) -> dict[str, Any]:
    """Load and validate a ``repro.run.critpath`` file; raises on problems."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_critpath(payload)
    if problems:
        raise ValueError(f"{path}: {'; '.join(problems)}")
    return payload
