"""Cross-process sampling profiler with flamegraph export.

ROADMAP's "make the multiprocess backend actually fast" item needs
attribution *below* span granularity: spans say ``parse file_00017``
took 40 ms, but not how much of that was ``encode_parsed_file`` vs.
ring chunk-copies vs. waiting on a full ring.  This module supplies
that view with three pieces:

:class:`SamplingProfiler`
    A per-process deterministic-interval wall-clock sampler.  A daemon
    thread ticks every ``interval_s`` seconds and captures the Python
    stack of every *other* thread via ``sys._current_frames()``,
    aggregating ``(lane, stack) → sample count`` in memory.  No
    tracing hooks, no per-call overhead — cost is proportional to the
    tick rate, not the workload (the overhead gate in
    ``tests/test_profile.py`` pins it at ≤ 5%).  The tick is
    *deterministic-interval*: the next tick is scheduled at
    ``previous + interval`` (re-anchored after an overrun), so sample
    counts approximate ``elapsed / interval`` instead of drifting with
    scheduler jitter.

:class:`Profile`
    The merge container.  The engine owns one; its own sampler and
    every worker's drained delta are absorbed into it, keyed by lane
    (``engine``, ``cpu-0``, ``parser-1``, ``engine/prefetch-w0``) with
    the contributing pids recorded per lane — after a supervisor
    restart a lane simply carries two pids.  Worker deltas travel in
    the same reply tuples as span/metrics deltas (see
    ``core/mp_worker.py``), so a crashed worker's profile is replayed
    exactly like its spans: whatever it shipped before dying survives.

Report/export helpers
    :func:`to_folded` (collapsed-stack text for ``flamegraph.pl``),
    :func:`to_speedscope` (https://speedscope.app JSON),
    :func:`render_profile_report` (top-N self/cumulative table plus
    the "shm codec hot path" section ranking encode/decode/chunk-copy
    frames against ring-wait time from ``shm.ring.*`` metrics), and
    :func:`render_profile_diff` / :func:`top_regressed` (shared by
    ``repro profile --diff`` and the bench gate's function-level
    regression localization).

Frame identity is ``path:function:first_lineno`` — a pure function of
the source tree, which is what makes profile *structure* (the call-site
set) reproducible across identical seeded runs even though sample
counts are wall-clock measurements.

This module reads ``time.monotonic`` directly: a sampler *is* a clock
consumer, which is why ``obs/profile.py`` sits inside the RPR008 clock
fence alongside ``util/timing.py`` (see ``repro.lint.rules``).  It is
engine-free and stdlib-only, importable from workers before the engine
is.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Callable, Mapping

from .profile_schema import build_profile_payload

__all__ = [
    "DEFAULT_PROFILE_INTERVAL_S",
    "SamplingProfiler",
    "Profile",
    "ProfileDelta",
    "frame_id",
    "self_seconds",
    "cumulative_seconds",
    "top_functions",
    "top_regressed",
    "to_folded",
    "to_speedscope",
    "render_profile_report",
    "render_profile_diff",
]

DEFAULT_PROFILE_INTERVAL_S = 0.01

#: Maximum captured stack depth; deeper frames are truncated at the root.
_MAX_DEPTH = 128

#: A drained per-process sample batch: (pid, {lane: samples},
#: [(lane, frames_root_first, count), ...]).  Plain picklable builtins so
#: it rides the worker reply tuples unchanged.
ProfileDelta = tuple


def frame_id(code: Any) -> str:
    """``path:function:first_lineno`` for a code object.

    The path is shortened to start at the last ``repro/`` component so
    ids are stable across checkouts and virtualenvs; foreign code keeps
    its basename only.
    """
    path = code.co_filename.replace(os.sep, "/")
    idx = path.rfind("/repro/")
    if idx >= 0:
        path = path[idx + 1 :]
    elif path.startswith("repro/"):
        pass
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{code.co_name}:{code.co_firstlineno}"


class SamplingProfiler:
    """Deterministic-interval wall-clock sampler for one process.

    ``frames_source`` defaults to ``sys._current_frames`` and is
    injectable so tests can drive :meth:`sample_once` with synthetic
    thread→frame maps and get bit-reproducible aggregates.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_PROFILE_INTERVAL_S,
        lane: str = "engine",
        frames_source: Callable[[], Mapping[int, Any]] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self._interval_s = float(interval_s)
        self._lane = lane
        self._frames_source = frames_source or sys._current_frames
        self._clock = clock
        self._lock = threading.Lock()
        # lane → {stack tuple (root-first) → samples}; guarded by _lock.
        self._counts: dict[str, dict[tuple, int]] = {}
        self._samples: dict[str, int] = {}
        self._frame_ids: dict[int, str] = {}  # id(code) → frame_id cache
        self._thread: threading.Thread | None = None
        self._self_ident: int | None = None
        self._primary_ident: int | None = None
        self._stop_requested = False

    @property
    def interval_s(self) -> float:
        return self._interval_s

    def start(self) -> None:
        """Start the sampler thread; the calling thread becomes the
        lane's primary (sampled under the bare lane name)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._primary_ident = threading.get_ident()
        self._stop_requested = False
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        # Plain flag write: the sampler only ever reads it, and the
        # join below is the happens-before edge (race_allowlist.txt).
        self._stop_requested = True
        thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        self._self_ident = threading.get_ident()
        interval = self._interval_s
        next_tick = self._clock() + interval
        while not self._stop_requested:
            delay = next_tick - self._clock()
            if delay > 0:
                time.sleep(delay)
                if self._stop_requested:
                    break
            else:
                # Overrun (GIL stall, suspended process): re-anchor so
                # we don't burst-sample to catch up.
                next_tick = self._clock()
            self.sample_once()
            next_tick += interval

    def sample_once(self) -> None:
        """Capture one sample of every thread except the sampler."""
        frames = self._frames_source()
        names = {t.ident: t.name for t in threading.enumerate()}
        with self._lock:
            for ident, frame in frames.items():
                if ident == self._self_ident:
                    continue
                if ident == self._primary_ident:
                    lane = self._lane
                else:
                    lane = f"{self._lane}/{names.get(ident, 'unnamed')}"
                stack = self._capture(frame)
                if not stack:
                    continue
                bucket = self._counts.setdefault(lane, {})
                bucket[stack] = bucket.get(stack, 0) + 1
                self._samples[lane] = self._samples.get(lane, 0) + 1

    def _capture(self, frame: Any) -> tuple:
        ids = self._frame_ids
        stack: list[str] = []
        depth = 0
        while frame is not None and depth < _MAX_DEPTH:
            code = frame.f_code
            fid = ids.get(id(code))
            if fid is None:
                fid = frame_id(code)
                ids[id(code)] = fid
            stack.append(fid)
            frame = frame.f_back
            depth += 1
        stack.reverse()  # root-first, the collapsed-stack order
        return tuple(stack)

    def drain_delta(self) -> ProfileDelta | None:
        """Take and clear the accumulated samples as a picklable delta.

        Returns ``None`` when nothing was sampled, so idle worker
        replies stay as small as before profiling existed.
        """
        with self._lock:
            if not self._samples:
                return None
            counts = self._counts
            samples = self._samples
            self._counts = {}
            self._samples = {}
        stacks = [
            (lane, frames, n)
            for lane, bucket in counts.items()
            for frames, n in bucket.items()
        ]
        return (os.getpid(), samples, stacks)


class Profile:
    """Merged cross-process view: engine + worker deltas by lane."""

    def __init__(self, interval_s: float = DEFAULT_PROFILE_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._pids: dict[str, set[int]] = {}
        self._counts: dict[str, dict[tuple, int]] = {}

    def absorb(self, delta: ProfileDelta | None) -> None:
        """Fold one drained delta in; tolerates ``None`` (empty delta)."""
        if delta is None:
            return
        pid, samples, stacks = delta
        with self._lock:
            for lane in samples:
                self._pids.setdefault(lane, set()).add(pid)
                self._counts.setdefault(lane, {})
            for lane, frames, n in stacks:
                bucket = self._counts[lane]
                key = tuple(frames)
                bucket[key] = bucket.get(key, 0) + n

    def to_payload(self, meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
        with self._lock:
            return build_profile_payload(
                self.interval_s, dict(self._pids), self._counts, meta=meta
            )


# ---------------------------------------------------------------------------
# Aggregation over payloads


def self_seconds(payload: Mapping[str, Any]) -> dict[str, float]:
    """frame → attributed self time (leaf samples × interval)."""
    interval = payload["interval_s"]
    out: dict[str, float] = {}
    for entry in payload["stacks"]:
        leaf = entry["frames"][-1]
        out[leaf] = out.get(leaf, 0.0) + entry["count"] * interval
    return out


def cumulative_seconds(payload: Mapping[str, Any]) -> dict[str, float]:
    """frame → time with the frame anywhere on the stack (deduplicated
    per stack, so recursion doesn't double-count)."""
    interval = payload["interval_s"]
    out: dict[str, float] = {}
    for entry in payload["stacks"]:
        weight = entry["count"] * interval
        for frame in set(entry["frames"]):
            out[frame] = out.get(frame, 0.0) + weight
    return out


def top_functions(
    payload: Mapping[str, Any], mode: str = "self", n: int = 10
) -> list[tuple[str, float]]:
    """Top-``n`` (frame, seconds) by self or cumulative time."""
    if mode not in ("self", "cum"):
        raise ValueError(f"mode must be 'self' or 'cum', got {mode!r}")
    table = self_seconds(payload) if mode == "self" else cumulative_seconds(payload)
    ranked = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:n]


def top_regressed(
    old: Mapping[str, float], new: Mapping[str, float], n: int = 5
) -> list[tuple[str, float, float, float]]:
    """Frames whose attributed time grew: (frame, old_s, new_s, delta)
    sorted by delta descending.  Shared by ``repro profile --diff`` and
    the bench gate's localization hints."""
    rows = []
    for frame, new_s in new.items():
        old_s = old.get(frame, 0.0)
        if new_s > old_s:
            rows.append((frame, old_s, new_s, new_s - old_s))
    rows.sort(key=lambda r: (-r[3], r[0]))
    return rows[:n]


# ---------------------------------------------------------------------------
# Exports


def to_folded(payload: Mapping[str, Any]) -> str:
    """Collapsed-stack text: ``lane;frame;frame count`` per line, the
    input format of ``flamegraph.pl`` and speedscope's importer."""
    lines = [
        ";".join([entry["lane"]] + list(entry["frames"])) + f" {entry['count']}"
        for entry in payload["stacks"]
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(payload: Mapping[str, Any], name: str = "repro") -> dict[str, Any]:
    """Speedscope file-format JSON (one "sampled" profile per lane)."""
    interval = payload["interval_s"]
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def _idx(frame: str) -> int:
        i = frame_index.get(frame)
        if i is None:
            i = len(frames)
            frame_index[frame] = i
            frames.append({"name": frame})
        return i

    by_lane: dict[str, list[dict[str, Any]]] = {}
    for entry in payload["stacks"]:
        by_lane.setdefault(entry["lane"], []).append(entry)

    profiles = []
    for lane in sorted(by_lane):
        samples = []
        weights = []
        total = 0.0
        for entry in by_lane[lane]:
            samples.append([_idx(f) for f in entry["frames"]])
            weight = entry["count"] * interval
            weights.append(weight)
            total += weight
        profiles.append(
            {
                "type": "sampled",
                "name": lane,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


# ---------------------------------------------------------------------------
# Reports

#: Files whose frames belong to the shm codec hot path, with the role a
#: function name maps to.  ROADMAP's batching decision hinges on the
#: encode/decode vs. chunk-copy vs. ring-wait split this produces.
_SHM_FILES = ("core/shm_ring.py", "parsing/stream_codec.py")
_SHM_ROLES = (
    ("encode", ("encode_batch", "encode_parsed_file", "_write_batch")),
    ("decode", ("decode_batch", "decode_parsed_file", "_read_batch")),
    ("chunk-copy", ("put_frame", "get_frame")),
    ("ring-wait", ("_wait",)),
)


def _shm_role(frame: str) -> str | None:
    parts = frame.split(":")
    if len(parts) < 2 or not parts[0].endswith(_SHM_FILES):
        return None
    func = parts[1]
    for role, funcs in _SHM_ROLES:
        if func in funcs:
            return role
    return "codec-other"


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:8.3f}s"


def render_shm_hot_path(
    payload: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    n: int = 8,
) -> list[str]:
    """The "shm codec hot path" section: encode/decode/chunk-copy frames
    ranked by self time, against ring-wait time from ``shm.ring.*``
    counters when a ``run.metrics.json`` payload is supplied."""
    lines = ["shm codec hot path:"]
    ranked = [
        (frame, secs, _shm_role(frame))
        for frame, secs in sorted(
            self_seconds(payload).items(), key=lambda kv: (-kv[1], kv[0])
        )
        if _shm_role(frame) is not None
    ]
    if ranked:
        lines.append(f"  {'self':>9}  {'role':<11}  frame")
        for frame, secs, role in ranked[:n]:
            lines.append(f"  {_fmt_seconds(secs)}  {role:<11}  {frame}")
    else:
        lines.append("  (no samples landed in shm codec frames)")
    if metrics is not None:
        counters = metrics.get("counters", {})
        prod_p = counters.get("shm.ring.producer_wait_polls", 0)
        cons_p = counters.get("shm.ring.consumer_wait_polls", 0)
        prod_s = counters.get("shm.ring.producer_wait_s", 0.0)
        cons_s = counters.get("shm.ring.consumer_wait_s", 0.0)
        if prod_p or cons_p:
            lines.append(
                f"  ring waits: producer {prod_p} poll(s) (~{prod_s:.3f}s), "
                f"consumer {cons_p} poll(s) (~{cons_s:.3f}s)"
            )
        else:
            lines.append("  ring waits: none recorded")
    return lines


def render_profile_report(
    payload: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    top: int = 10,
    mode: str = "self",
) -> str:
    """ASCII report for ``repro profile``: header, per-lane totals,
    top-N function table, and the shm hot-path section."""
    interval = payload["interval_s"]
    lanes = payload["lanes"]
    total = sum(entry["samples"] for entry in lanes.values())
    lines = [
        f"profile: {total} sample(s) across {len(lanes)} lane(s), "
        f"interval {interval * 1000:.1f}ms "
        f"(~{total * interval:.3f}s attributed)"
    ]
    for lane in sorted(lanes):
        entry = lanes[lane]
        pids = ",".join(str(p) for p in entry["pids"])
        lines.append(f"  lane {lane:<24} {entry['samples']:>7} sample(s)  pid {pids}")

    label = "self" if mode == "self" else "cumulative"
    lines.append("")
    lines.append(f"top {top} function(s) by {label} time:")
    ranked = top_functions(payload, mode=mode, n=top)
    if ranked:
        cum = cumulative_seconds(payload)
        slf = self_seconds(payload)
        lines.append(f"  {'self':>9}  {'cum':>9}  frame")
        for frame, _secs in ranked:
            lines.append(
                f"  {_fmt_seconds(slf.get(frame, 0.0))}  "
                f"{_fmt_seconds(cum.get(frame, 0.0))}  {frame}"
            )
    else:
        lines.append("  (no samples)")

    lines.append("")
    lines.extend(render_shm_hot_path(payload, metrics))
    return "\n".join(lines)


def render_profile_diff(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    top: int = 10,
    mode: str = "self",
) -> str:
    """Diff report for ``repro profile --diff OLD NEW``."""
    table = self_seconds if mode == "self" else cumulative_seconds
    old_t, new_t = table(old), table(new)
    regressed = top_regressed(old_t, new_t, n=top)
    improved = top_regressed(new_t, old_t, n=top)  # symmetric: shrunk frames
    old_total = sum(e["samples"] for e in old["lanes"].values()) * old["interval_s"]
    new_total = sum(e["samples"] for e in new["lanes"].values()) * new["interval_s"]
    label = "self" if mode == "self" else "cumulative"
    lines = [
        f"profile diff ({label} time): "
        f"~{old_total:.3f}s -> ~{new_total:.3f}s attributed"
    ]
    # Disjoint lanes (e.g. a serial artifact against a multiprocess one:
    # no parser-*/cpu-* lanes on one side) would otherwise read as every
    # frame "regressing" from zero — say explicitly which lanes only one
    # side sampled so the tables below are read per shared lane.
    old_lanes, new_lanes = set(old["lanes"]), set(new["lanes"])
    for lane in sorted(old_lanes - new_lanes):
        lines.append(
            f"note: lane {lane!r} only in OLD "
            f"({old['lanes'][lane]['samples']} sample(s)) — "
            "its frames read as improvements"
        )
    for lane in sorted(new_lanes - old_lanes):
        lines.append(
            f"note: lane {lane!r} only in NEW "
            f"({new['lanes'][lane]['samples']} sample(s)) — "
            "its frames read as regressions"
        )
    lines.append(f"top {top} regressed function(s):")
    if regressed:
        lines.append(f"  {'old':>9}  {'new':>9}  {'delta':>9}  frame")
        for frame, old_s, new_s, delta in regressed:
            lines.append(
                f"  {_fmt_seconds(old_s)}  {_fmt_seconds(new_s)}  "
                f"+{delta:7.3f}s  {frame}"
            )
    else:
        lines.append("  (none)")
    lines.append(f"top {top} improved function(s):")
    if improved:
        lines.append(f"  {'old':>9}  {'new':>9}  {'delta':>9}  frame")
        for frame, new_s, old_s, delta in improved:
            lines.append(
                f"  {_fmt_seconds(old_s)}  {_fmt_seconds(new_s)}  "
                f"-{delta:7.3f}s  {frame}"
            )
    else:
        lines.append("  (none)")
    return "\n".join(lines)
