"""Kernel launch: thread blocks, SM scheduling, and latency hiding.

The paper launches its GPU indexer as a grid of thread blocks (32 threads
each) and schedules trie collections onto blocks with a *dynamic
round-robin* queue: "whenever a thread block completes the processing of a
particular trie collection, it starts processing the next available trie
collection".  After sweeping block counts they settle on **480 blocks per
GPU** (16 per SM).

This module reproduces that machinery as a scheduling simulation:

- work items (one per trie collection, carrying the warp cycle counters
  measured by :class:`~repro.gpusim.warp.WarpExecutor`) are assigned to
  blocks either dynamically (earliest-finishing block takes the next item)
  or statically (``item i → block i mod B``, the ablation);
- blocks map round-robin onto the 30 SMs; an SM issues its resident
  blocks' compute serially but overlaps their memory stalls — the
  latency-hiding discount grows with resident blocks per SM, capped by
  hardware residency (8 blocks/SM on the C1060);
- each block pays a fixed scheduling overhead, and the whole launch pays a
  fixed kernel-launch cost, so the block-count sweep is U-shaped with an
  interior optimum like the paper's 480.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.gpusim.costmodel import GPUSpec, TESLA_C1060

__all__ = ["WorkItem", "KernelLaunch", "KernelResult"]


@dataclass(frozen=True)
class WorkItem:
    """One trie collection's worth of warp work, in raw cycles."""

    key: object
    compute_cycles: float
    memory_stall_cycles: float
    bus_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.memory_stall_cycles + self.bus_cycles


@dataclass
class KernelResult:
    """Outcome of one simulated kernel launch."""

    elapsed_seconds: float
    elapsed_cycles: float
    num_blocks: int
    resident_blocks_per_sm: int
    block_cycles: list[float] = field(default_factory=list)
    sm_cycles: list[float] = field(default_factory=list)
    items_per_block: list[int] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """max/mean over per-SM cycles (1.0 = perfectly balanced)."""
        busy = [c for c in self.sm_cycles if c > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0


class KernelLaunch:
    """Simulates one GPU indexer kernel over a set of trie collections."""

    def __init__(
        self,
        spec: GPUSpec = TESLA_C1060,
        num_blocks: int = 480,
        schedule: str = "dynamic",
    ) -> None:
        if num_blocks < 1:
            raise ValueError(f"need at least one thread block, got {num_blocks}")
        if schedule not in ("dynamic", "static"):
            raise ValueError(f"schedule must be 'dynamic' or 'static', got {schedule!r}")
        self.spec = spec
        self.num_blocks = num_blocks
        self.schedule = schedule

    # ------------------------------------------------------------------ #

    def _assign(self, items: list[WorkItem]) -> tuple[list[float], list[float], list[float], list[int]]:
        """Distribute items over blocks; returns per-block cycle sums.

        Returns ``(compute, stall, bus, item_count)`` per block.
        """
        nb = self.num_blocks
        compute = [0.0] * nb
        stall = [0.0] * nb
        bus = [0.0] * nb
        count = [0] * nb
        if self.schedule == "static":
            # The ablation: collection i is pinned to block i mod B before
            # launch, whatever its size.
            for i, item in enumerate(items):
                b = i % nb
                compute[b] += item.compute_cycles
                stall[b] += item.memory_stall_cycles
                bus[b] += item.bus_cycles
                count[b] += 1
        else:
            # Dynamic round-robin: earliest-finishing block pops the queue.
            heap = [(0.0, b) for b in range(nb)]
            heapq.heapify(heap)
            for item in items:
                finish, b = heapq.heappop(heap)
                compute[b] += item.compute_cycles
                stall[b] += item.memory_stall_cycles
                bus[b] += item.bus_cycles
                count[b] += 1
                heapq.heappush(heap, (finish + item.total_cycles, b))
        return compute, stall, bus, count

    def run(self, items: list[WorkItem]) -> KernelResult:
        """Simulate the launch; returns elapsed time and balance stats."""
        spec = self.spec
        compute, stall, bus, count = self._assign(list(items))

        # Hardware residency: how many of an SM's blocks overlap stalls.
        blocks_per_sm = -(-self.num_blocks // spec.num_sms)
        resident = max(1, min(spec.max_blocks_per_sm, blocks_per_sm))

        block_cycles = [
            c + b + s / resident + spec.block_overhead_cycles
            for c, s, b in zip(compute, stall, bus)
        ]
        # Blocks map round-robin onto SMs; an SM's elapsed time is the sum
        # of its blocks' effective cycles (issue slots are serial), with a
        # fill/drain factor that shrinks as the backlog per SM grows.
        sm_cycles = [0.0] * spec.num_sms
        for b, cycles in enumerate(block_cycles):
            if count[b] or True:  # idle blocks still pay their overhead
                sm_cycles[b % spec.num_sms] += cycles
        fill_drain = 1.0 + 0.5 / max(1.0, self.num_blocks / spec.num_sms)
        sm_cycles = [c * fill_drain for c in sm_cycles]

        elapsed_cycles = max(sm_cycles) + spec.kernel_launch_cycles
        return KernelResult(
            elapsed_seconds=spec.seconds(elapsed_cycles),
            elapsed_cycles=elapsed_cycles,
            num_blocks=self.num_blocks,
            resident_blocks_per_sm=resident,
            block_cycles=block_cycles,
            sm_cycles=sm_cycles,
            items_per_block=count,
        )
