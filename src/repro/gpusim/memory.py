"""Device-memory coalescing and shared-memory bank-conflict accounting.

The paper's two GPU memory rules (Section I):

1. Device-memory bandwidth "is achieved only when simultaneous accesses
   are coalesced into contiguous 16-word lines" — so the half-warp's
   addresses must fall in aligned 64-byte windows, and every extra window
   is an extra transaction.
2. Shared memory has 16 banks; "the eight cores will be fully utilized as
   long as operands in the shared memory reside in different banks ... or
   access the same location from a bank" (broadcast).  Conflicting lanes
   serialize into extra passes.

Both rules are implemented literally here so the GPU indexer's access
patterns can be audited and costed; tests drive them with the classic
conflict/broadcast patterns.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["coalesced_transactions", "SharedMemory", "half_warp_transactions"]

WORD_BYTES = 4
LINE_BYTES = 64  # 16 words
HALF_WARP = 16


def half_warp_transactions(addresses: Sequence[int]) -> int:
    """Memory transactions for one half-warp's word addresses.

    Each distinct aligned 64-byte line touched costs one transaction; a
    fully coalesced access (16 consecutive words in one line) costs one.
    """
    if not addresses:
        return 0
    return len({addr // LINE_BYTES for addr in addresses})


def coalesced_transactions(start: int, nbytes: int) -> int:
    """Transactions to stream ``nbytes`` starting at byte ``start``.

    This is the cost the warp pays to pull one B-tree node (512B → 8
    transactions when 64-byte aligned) or one 512B string chunk into
    shared memory.
    """
    if nbytes <= 0:
        return 0
    first = start // LINE_BYTES
    last = (start + nbytes - 1) // LINE_BYTES
    return last - first + 1


class SharedMemory:
    """A 16KB, 16-bank shared memory with conflict accounting.

    Functional: data can be staged and read back (the warp B-tree search
    stages nodes and string chunks here).  Cost: every half-warp access
    pattern is scored in *passes* — 1 for conflict-free or broadcast, k for
    a k-way bank conflict.
    """

    def __init__(self, size_bytes: int = 16 * 1024, banks: int = HALF_WARP) -> None:
        self.size_bytes = size_bytes
        self.banks = banks
        self.data = bytearray(size_bytes)
        #: Total serialized passes over all accesses (cost-model input).
        self.access_passes = 0
        #: Number of half-warp access patterns scored.
        self.access_count = 0
        #: Bytes currently allocated by the resident block.
        self.allocated = 0

    # ------------------------------------------------------------------ #
    # Allocation (per thread block residency)
    # ------------------------------------------------------------------ #

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns the base offset.

        A thread block whose allocations exceed 16KB would not launch on
        real hardware, so we raise instead of silently spilling.
        """
        if self.allocated + nbytes > self.size_bytes:
            raise MemoryError(
                f"shared memory exhausted: {self.allocated} + {nbytes} "
                f"> {self.size_bytes} bytes"
            )
        base = self.allocated
        self.allocated += nbytes
        return base

    def reset(self) -> None:
        """Release all allocations (block retired)."""
        self.allocated = 0

    # ------------------------------------------------------------------ #
    # Functional staging
    # ------------------------------------------------------------------ #

    def store(self, offset: int, payload: bytes) -> None:
        if offset + len(payload) > self.size_bytes:
            raise MemoryError("store past end of shared memory")
        self.data[offset : offset + len(payload)] = payload

    def load(self, offset: int, nbytes: int) -> bytes:
        return bytes(self.data[offset : offset + nbytes])

    # ------------------------------------------------------------------ #
    # Bank-conflict scoring
    # ------------------------------------------------------------------ #

    def bank_of(self, byte_offset: int) -> int:
        return (byte_offset // WORD_BYTES) % self.banks

    def access(self, word_offsets: Iterable[int]) -> int:
        """Score one half-warp access; returns serialized passes.

        ``word_offsets`` are byte offsets (word-aligned) accessed by the
        active lanes.  Lanes reading the *same word* broadcast (1 pass);
        lanes hitting the same bank at different words serialize.
        """
        per_bank: dict[int, set[int]] = {}
        for off in word_offsets:
            per_bank.setdefault(self.bank_of(off), set()).add(off // WORD_BYTES)
        passes = max((len(words) for words in per_bank.values()), default=0)
        passes = max(passes, 1) if per_bank else 0
        self.access_passes += passes
        self.access_count += 1
        return passes

    def conflict_degree(self, word_offsets: Sequence[int]) -> int:
        """Max same-bank distinct-word count (1 = conflict free)."""
        counts = Counter()
        seen: set[tuple[int, int]] = set()
        for off in word_offsets:
            key = (self.bank_of(off), off // WORD_BYTES)
            if key not in seen:
                seen.add(key)
                counts[key[0]] += 1
        return max(counts.values(), default=0)
