"""Warp-parallel comparison + reduction (Fig 7, and Harris [11]).

To locate a key inside a B-tree node, the paper assigns one thread per
stored term: all 31 comparisons happen in a single SIMD step, then "a
parallel reduction step [11] will enable us to identify the location of
the new term".  These functions execute that algorithm *literally* — an
array of per-lane comparison results reduced in log₂(warp) tree steps —
so tests can check it against the sequential binary search and the cost
model can charge the real step count.
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["warp_compare_keys", "warp_reduce_min", "warp_find_slot", "REDUCTION_STEPS"]

WARP_SIZE = 32
#: log2(32) tree-reduction steps.
REDUCTION_STEPS = 5


def warp_compare_keys(
    query: bytes,
    keys: Sequence[bytes],
    compare: Callable[[bytes, bytes], int] | None = None,
) -> list[int]:
    """One SIMD step: every lane compares ``query`` to its key.

    Lane *i* produces ``sign(compare(query, keys[i]))``; lanes past the
    node's valid-term count (up to 31 keys in a 32-lane warp) behave as if
    their key were +∞ and produce −1, so the reduction always finds a slot.
    """
    if len(keys) >= WARP_SIZE:
        raise ValueError(f"a warp handles at most {WARP_SIZE - 1} keys, got {len(keys)}")
    if compare is None:
        compare = lambda a, b: (a > b) - (a < b)  # noqa: E731
    lanes = []
    for lane in range(WARP_SIZE):
        if lane < len(keys):
            lanes.append(compare(query, keys[lane]))
        else:
            lanes.append(-1)  # query < +infinity
    return lanes


def warp_reduce_min(values: Sequence[int]) -> tuple[int, int]:
    """Tree-reduce to the minimum value and its first lane index.

    Returns ``(min value, lane)`` after exactly ``REDUCTION_STEPS`` halving
    steps, the schedule of Harris's reduction kernel [11].  Ties resolve to
    the lowest lane, matching how the hardware's first-active-lane ballot
    would.
    """
    if len(values) != WARP_SIZE:
        raise ValueError(f"warp reduction needs {WARP_SIZE} lanes, got {len(values)}")
    vals = list(values)
    idx = list(range(WARP_SIZE))
    stride = WARP_SIZE // 2
    for _ in range(REDUCTION_STEPS):
        for lane in range(stride):
            other = lane + stride
            if vals[other] < vals[lane] or (
                vals[other] == vals[lane] and idx[other] < idx[lane]
            ):
                vals[lane] = vals[other]
                idx[lane] = idx[other]
        stride //= 2
    return vals[0], idx[0]


def warp_find_slot(
    query: bytes,
    keys: Sequence[bytes],
    compare: Callable[[bytes, bytes], int] | None = None,
) -> tuple[int, bool]:
    """Full Fig 7 node search: parallel compare, then reduction.

    Returns ``(slot, found)`` with the same contract as the CPU binary
    search (:meth:`repro.dictionary.btree.BTree._find_slot`): ``slot`` is
    the index of the first key ≥ query.

    The reduction minimizes an encoding that ranks *equality* below
    *greater-than* lanes at the same position: lane i holding cmp result
    c ∈ {-1, 0, +1} encodes ``(c >= 0, lane)`` — the first lane where the
    query no longer sorts after the key.
    """
    lanes = warp_compare_keys(query, keys, compare)
    # Encode: a lane where query <= key competes with its own index; a
    # lane where the query still sorts after the key takes a +∞ sentinel.
    # Lanes past the valid keys compare against +∞ (cmp = −1), so a
    # competing lane always exists and the minimum is the first slot with
    # key >= query.
    encoded = [lane if lanes[lane] <= 0 else WARP_SIZE * 2 for lane in range(WARP_SIZE)]
    slot, _ = warp_reduce_min(encoded)
    # The reduction alone cannot distinguish "first key >= query" from
    # "first key == query"; the found bit is the winning lane's own
    # comparison result (one more SIMD-step read).
    found = slot < len(keys) and lanes[slot] == 0
    return slot, found
