"""Warp-level execution and cycle accounting for the GPU indexer.

The paper runs one warp (32 threads) per thread block and one thread block
per trie collection at a time.  :class:`WarpExecutor` is the accounting
surface that the GPU B-tree algorithm drives; every primitive records both
*compute* cycles (always serialized on the SM's cores) and *memory stall*
cycles (hidden when other blocks are resident — the kernel scheduler
applies the occupancy discount).

Primitives and their charges (cycles, derived from
:class:`~repro.gpusim.costmodel.GPUSpec`):

==============================  =============================================
``load_node``                    one coalesced 512B stream: 8 transactions →
                                 1 latency stall + bus occupancy
``load_string_chunk``            same pattern for 512B term-string chunks
``parallel_compare``             1 SIMD step (all 31 keys at once) but a
                                 4-byte cache compare is 4 char steps
``reduce``                       log₂32 = 5 SIMD steps
``fetch_full_string``            an *uncoalesced* device read: per-line
                                 latency with no neighbours to share it
``shift``                        1 SIMD step (parallel right-shift inside
                                 the node) + node write-back occupancy
``split``                        two node writes + parent update
==============================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dictionary.layout import DEVICE_CHUNK_BYTES, NODE_SIZE_BYTES
from repro.gpusim.costmodel import GPUSpec, TESLA_C1060
from repro.gpusim.memory import coalesced_transactions
from repro.gpusim.reduction import REDUCTION_STEPS

__all__ = ["WarpExecutor", "WarpCounters"]

#: Cycles per SIMD instruction step for a full warp on 8 SPs: a 32-thread
#: warp issues over 4 clock cycles on compute-capability-1.x hardware.
CYCLES_PER_WARP_STEP = 4


@dataclass
class WarpCounters:
    """Raw event counts recorded by a warp executor."""

    compute_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    bus_cycles: float = 0.0
    node_loads: int = 0
    node_writebacks: int = 0
    string_chunk_loads: int = 0
    full_string_fetches: int = 0
    parallel_compares: int = 0
    reductions: int = 0
    shifts: int = 0
    splits: int = 0
    divergent_branches: int = 0

    def merge(self, other: "WarpCounters") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def total_cycles(self) -> float:
        """Un-hidden sequential cycles (stall fully exposed)."""
        return self.compute_cycles + self.memory_stall_cycles + self.bus_cycles


class WarpExecutor:
    """Charges cycles for the warp B-tree algorithm's primitives."""

    def __init__(self, spec: GPUSpec = TESLA_C1060) -> None:
        self.spec = spec
        self.counters = WarpCounters()

    # ------------------------------------------------------------------ #
    # Memory movement
    # ------------------------------------------------------------------ #

    def _charge_stream(self, nbytes: int, count: int = 1) -> None:
        transactions = coalesced_transactions(0, nbytes)
        stall, bus = self.spec.memory_cycles(transactions)
        self.counters.memory_stall_cycles += stall * count
        self.counters.bus_cycles += bus * count

    def load_node(self, node_bytes: int = NODE_SIZE_BYTES, count: int = 1) -> None:
        """Move B-tree node(s) into shared memory (coalesced)."""
        self.counters.node_loads += count
        self._charge_stream(node_bytes, count)

    def writeback_node(self, node_bytes: int = NODE_SIZE_BYTES, count: int = 1) -> None:
        """Write modified node(s) back to device memory (coalesced)."""
        self.counters.node_writebacks += count
        self._charge_stream(node_bytes, count)

    def load_string_chunk(self, chunk_bytes: int = DEVICE_CHUNK_BYTES, count: int = 1) -> None:
        """Stage 512B term-string chunk(s) into shared memory."""
        self.counters.string_chunk_loads += count
        self._charge_stream(chunk_bytes, count)

    def fetch_full_string(self, nbytes: int, count: int = 1) -> None:
        """Dereference term-string pointer(s) (uncoalesced, cache ties).

        Only one lane knows the pointer, so there is nothing to coalesce:
        each touched line pays the full latency.
        """
        self.counters.full_string_fetches += count
        lines = coalesced_transactions(0, max(1, nbytes))
        stall, bus = self.spec.memory_cycles(1)
        self.counters.memory_stall_cycles += stall * lines * count
        self.counters.bus_cycles += bus * lines * count

    # ------------------------------------------------------------------ #
    # Compute steps
    # ------------------------------------------------------------------ #

    def parallel_compare(self, cache_bytes: int = 4, count: int = 1) -> None:
        """All lanes compare the query against their key's cache bytes."""
        self.counters.parallel_compares += count
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * cache_bytes * count

    def reduce(self, count: int = 1) -> None:
        """Tree reduction to the winning lane (Harris [11])."""
        self.counters.reductions += count
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * REDUCTION_STEPS * count

    def shift(self, lanes_moved: int, count: int = 1) -> None:
        """Parallel right-shift to open an insert slot (1 step)."""
        self.counters.shifts += count
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * count
        # A modified node must eventually be written back; charged by the
        # caller via writeback_node so splits don't double-count.
        del lanes_moved  # all lanes move in the same step

    def split(self, count: int = 1) -> None:
        """Split full node(s): new sibling + median move + parent insert."""
        self.counters.splits += count
        # Copy half the node out and update the parent: two coalesced
        # writes plus a few SIMD steps of bookkeeping.
        self._charge_stream(NODE_SIZE_BYTES, 2 * count)
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * 8 * count

    def diverge(self) -> None:
        """A data-dependent branch serializes the warp's two paths."""
        self.counters.divergent_branches += 1
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * 2

    def scalar_op(self, steps: int = 1) -> None:
        """Bookkeeping executed by lane 0 only (still a warp issue slot)."""
        self.counters.compute_cycles += CYCLES_PER_WARP_STEP * steps
