"""A whole GPU: device memory, PCIe transfers, kernel launches.

:class:`Device` tracks device-memory occupancy (the C1060's 4GB bounds how
much parsed stream a single run can ship to one GPU — the engine sizes its
runs against this), times host↔device transfers (the pre-processing and
post-processing steps that Section IV.B notes limit multi-GPU indexer
performance), and launches indexing kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.costmodel import GPUSpec, TESLA_C1060
from repro.gpusim.kernel import KernelLaunch, KernelResult, WorkItem

__all__ = ["Device", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One host↔device copy."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    seconds: float


@dataclass
class Device:
    """One simulated GPU."""

    device_id: int = 0
    spec: GPUSpec = TESLA_C1060
    allocated_bytes: int = 0
    transfers: list[TransferRecord] = field(default_factory=list)
    kernel_seconds: float = 0.0
    launches: int = 0

    # ------------------------------------------------------------------ #
    # Device memory
    # ------------------------------------------------------------------ #

    def alloc(self, nbytes: int) -> None:
        """Reserve device memory; raises when the 4GB card is full."""
        if self.allocated_bytes + nbytes > self.spec.device_memory_bytes:
            raise MemoryError(
                f"GPU {self.device_id}: allocation of {nbytes} bytes exceeds "
                f"device memory ({self.allocated_bytes} of "
                f"{self.spec.device_memory_bytes} in use)"
            )
        self.allocated_bytes += nbytes

    def free_all(self) -> None:
        """Release run-scoped allocations."""
        self.allocated_bytes = 0

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def transfer_to_device(self, nbytes: int) -> float:
        """Pre-processing copy (parsed streams → device); returns seconds."""
        self.alloc(nbytes)
        seconds = self.spec.transfer_seconds(nbytes)
        self.transfers.append(TransferRecord("h2d", nbytes, seconds))
        return seconds

    def transfer_from_device(self, nbytes: int) -> float:
        """Post-processing copy (postings → host); returns seconds."""
        seconds = self.spec.transfer_seconds(nbytes)
        self.transfers.append(TransferRecord("d2h", nbytes, seconds))
        return seconds

    # ------------------------------------------------------------------ #
    # Kernels
    # ------------------------------------------------------------------ #

    def launch(
        self,
        items: list[WorkItem],
        num_blocks: int = 480,
        schedule: str = "dynamic",
    ) -> KernelResult:
        """Run one indexing kernel over the given trie-collection work."""
        result = KernelLaunch(self.spec, num_blocks=num_blocks, schedule=schedule).run(items)
        self.kernel_seconds += result.elapsed_seconds
        self.launches += 1
        return result

    @property
    def transfer_seconds_total(self) -> float:
        return sum(t.seconds for t in self.transfers)
