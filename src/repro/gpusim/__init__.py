"""SIMT GPU simulator — the substitute for the paper's Tesla C1060s.

This environment has no CUDA device, so the GPU indexer runs on a
simulator that reproduces the execution model the paper's Section I and
III.D.2 rely on:

- **warps** of 32 lockstep threads (one warp per thread block, as the
  paper configures its indexer kernels);
- **coalesced device-memory transactions** in 16-word (64-byte) lines with
  a 400–600 cycle latency, hidden by switching among resident warps;
- **shared memory** with 16 banks and bank-conflict serialization;
- **thread blocks** scheduled onto 30 streaming multiprocessors, with the
  paper's *dynamic round-robin* work queue handing trie collections to
  blocks as they finish (vs. the static pre-assignment ablation);
- a **cycle cost model** (:mod:`repro.gpusim.costmodel`) translating the
  counted transactions/steps into seconds at the C1060's clock.

The simulator is *functional* as well as costed: the warp-parallel B-tree
node search of Fig 7 (:func:`repro.gpusim.reduction.warp_find_slot`) really
executes 32 lanes and a log₂32-step reduction, and the test suite checks it
agrees with the CPU binary search on every node.
"""

from repro.gpusim.costmodel import GPUSpec, TESLA_C1060
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelLaunch, KernelResult, WorkItem
from repro.gpusim.memory import SharedMemory, coalesced_transactions
from repro.gpusim.reduction import warp_find_slot, warp_reduce_min
from repro.gpusim.warp import WarpExecutor

__all__ = [
    "GPUSpec",
    "TESLA_C1060",
    "Device",
    "WarpExecutor",
    "SharedMemory",
    "coalesced_transactions",
    "warp_find_slot",
    "warp_reduce_min",
    "KernelLaunch",
    "KernelResult",
    "WorkItem",
]
