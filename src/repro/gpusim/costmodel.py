"""GPU hardware description and cycle cost model.

Parameters follow the NVIDIA Tesla C1060 as described in the paper's
Section I: 30 SMs × 8 SPs, 16,384 registers and 16KB shared memory per SM,
4GB device memory at a 102 GB/s peak reached only by coalesced 16-word-line
accesses, and a 400–600-cycle device-memory latency.  The shader clock of
the C1060 is 1.296 GHz.

The cost model charges *cycles* for the primitive operations the GPU
indexer performs (node loads, parallel comparisons, reductions, shifts,
splits, string-chunk staging) and converts cycles to seconds.  Latency
hiding is modeled at kernel level (see :mod:`repro.gpusim.kernel`): memory
stall cycles shrink as more blocks are resident per SM, which is what makes
480 blocks/GPU the throughput optimum the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "TESLA_C1060"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU."""

    name: str = "Tesla C1060 (simulated)"
    num_sms: int = 30
    cores_per_sm: int = 8
    warp_size: int = 32
    shared_mem_bytes: int = 16 * 1024
    shared_mem_banks: int = 16
    registers_per_sm: int = 16384
    device_memory_bytes: int = 4 * 1024**3
    clock_hz: float = 1.296e9
    #: Device-memory latency (paper: "around 400-600 cycles").
    mem_latency_cycles: int = 500
    #: One coalesced transaction moves a contiguous 16-word line.
    coalesced_line_bytes: int = 64
    peak_bandwidth_bytes: float = 102e9
    #: Host↔device transfer bandwidth (PCIe 2.0 ×16, effective).
    pcie_bandwidth_bytes: float = 5.5e9
    pcie_latency_s: float = 10e-6
    #: Max thread blocks resident per SM (compute capability 1.3).
    max_blocks_per_sm: int = 8
    #: Fixed cost to launch a kernel.
    kernel_launch_cycles: int = 8000
    #: Per-block scheduling/drain overhead: block setup and retirement,
    #: cold root/shared-memory warm-up, and the serialized global-atomic
    #: work-queue pop.  This is the rising term of the block-count sweep
    #: (fitted so the paper's 480-blocks optimum emerges at run-scale
    #: work volumes).
    block_overhead_cycles: int = 40000

    # ------------------------------------------------------------------ #
    # Primitive costs (cycles) for the warp B-tree algorithm of §III.D.2
    # ------------------------------------------------------------------ #

    @property
    def node_load_transactions(self) -> int:
        """Coalesced transactions to move one 512-byte node."""
        from repro.dictionary.btree import NODE_SIZE_BYTES

        return -(-NODE_SIZE_BYTES // self.coalesced_line_bytes)

    def transfer_seconds(self, nbytes: int) -> float:
        """Host↔device copy time for ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.pcie_latency_s + nbytes / self.pcie_bandwidth_bytes

    def seconds(self, cycles: float) -> float:
        """Convert cycles to seconds at the shader clock."""
        return cycles / self.clock_hz

    def memory_cycles(self, transactions: int) -> tuple[int, int]:
        """(stall cycles, occupancy cycles) for ``transactions`` line loads.

        A transaction exposes the full latency but consecutive coalesced
        transactions pipeline on the bus, so the stall component is one
        latency per *request burst* while the bus-occupancy component is
        per line (bounded by peak bandwidth).
        """
        if transactions <= 0:
            return 0, 0
        bus_cycles_per_line = int(
            self.coalesced_line_bytes / self.peak_bandwidth_bytes * self.clock_hz * self.num_sms
        )
        return self.mem_latency_cycles, transactions * max(1, bus_cycles_per_line)


#: The paper's accelerator.
TESLA_C1060 = GPUSpec()
