"""repro — a reproduction of Wei & JaJa, *A Fast Algorithm for
Constructing Inverted Files on Heterogeneous Platforms* (IPDPS 2011).

The package builds inverted files with the paper's pipelined CPU+GPU
architecture: parallel parsers with trie-indexed regrouping, a hybrid
trie + B-tree dictionary with per-node string caches, CPU indexers for
popular trie collections and warp-parallel GPU indexers (on a SIMT
simulator) for the long tail, runs written with header mapping tables and
gap-compressed postings.

Quickstart::

    from repro import IndexingEngine, PlatformConfig, clueweb09_mini, PostingsReader

    collection = clueweb09_mini("./data", scale=0.3)
    engine = IndexingEngine(PlatformConfig(num_parsers=6,
                                           num_cpu_indexers=2,
                                           num_gpus=2,
                                           sample_fraction=0.05))
    result = engine.build(collection, "./index")
    reader = PostingsReader("./index")
    reader.postings("parallel")      # [(doc_id, tf), ...]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.config import PlatformConfig
from repro.core.engine import EngineResult, IndexingEngine
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import WorkloadModel
from repro.corpus.collection import Collection, collection_statistics
from repro.corpus.datasets import clueweb09_mini, congress_mini, wikipedia_mini
from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection
from repro.dictionary.btree import BTree
from repro.dictionary.dictionary import Dictionary, DictionaryShard
from repro.dictionary.trie import TrieTable
from repro.postings.doctable import DocTable
from repro.postings.merge import merge_index
from repro.postings.reader import PostingsReader
from repro.search.query import SearchEngine

__version__ = "1.0.0"

__all__ = [
    "IndexingEngine",
    "EngineResult",
    "PlatformConfig",
    "simulate_pipeline",
    "simulate_full_build",
    "WorkloadModel",
    "Collection",
    "collection_statistics",
    "CollectionSpec",
    "SegmentSpec",
    "generate_collection",
    "clueweb09_mini",
    "wikipedia_mini",
    "congress_mini",
    "TrieTable",
    "BTree",
    "Dictionary",
    "DictionaryShard",
    "PostingsReader",
    "DocTable",
    "SearchEngine",
    "merge_index",
    "__version__",
]
