"""repro — a reproduction of Wei & JaJa, *A Fast Algorithm for
Constructing Inverted Files on Heterogeneous Platforms* (IPDPS 2011).

The package builds inverted files with the paper's pipelined CPU+GPU
architecture: parallel parsers with trie-indexed regrouping, a hybrid
trie + B-tree dictionary with per-node string caches, CPU indexers for
popular trie collections and warp-parallel GPU indexers (on a SIMT
simulator) for the long tail, runs written with header mapping tables and
gap-compressed postings.

Quickstart::

    from repro import IndexingEngine, PlatformConfig, clueweb09_mini, PostingsReader

    collection = clueweb09_mini("./data", scale=0.3)
    engine = IndexingEngine(PlatformConfig(num_parsers=6,
                                           num_cpu_indexers=2,
                                           num_gpus=2,
                                           sample_fraction=0.05))
    result = engine.build(collection, "./index")
    reader = PostingsReader("./index")
    reader.postings("parallel")      # [(doc_id, tf), ...]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

# PEP 562 lazy exports: ``import repro`` must stay cheap and side-effect
# free so tooling that lives inside the package (``repro.lint`` — which
# must never import the engine) and ``python -m repro --help`` do not
# drag in numpy and the whole engine.  ``from repro import X`` still
# works for every name below; the submodule is imported on first access.
_LAZY_EXPORTS = {
    "PlatformConfig": "repro.core.config",
    "EngineResult": "repro.core.engine",
    "IndexingEngine": "repro.core.engine",
    "simulate_full_build": "repro.core.pipeline",
    "simulate_pipeline": "repro.core.pipeline",
    "WorkloadModel": "repro.core.workload",
    "Collection": "repro.corpus.collection",
    "collection_statistics": "repro.corpus.collection",
    "clueweb09_mini": "repro.corpus.datasets",
    "congress_mini": "repro.corpus.datasets",
    "wikipedia_mini": "repro.corpus.datasets",
    "CollectionSpec": "repro.corpus.synthetic",
    "SegmentSpec": "repro.corpus.synthetic",
    "generate_collection": "repro.corpus.synthetic",
    "BTree": "repro.dictionary.btree",
    "Dictionary": "repro.dictionary.dictionary",
    "DictionaryShard": "repro.dictionary.dictionary",
    "TrieTable": "repro.dictionary.trie",
    "DocTable": "repro.postings.doctable",
    "merge_index": "repro.postings.merge",
    "PostingsReader": "repro.postings.reader",
    "SearchEngine": "repro.search.query",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        value = getattr(import_module(module_name), name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    try:
        # ``repro.corpus``-style submodule access after a bare
        # ``import repro`` (the eager imports used to provide this).
        return import_module(f"repro.{name}")
    except ImportError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "IndexingEngine",
    "EngineResult",
    "PlatformConfig",
    "simulate_pipeline",
    "simulate_full_build",
    "WorkloadModel",
    "Collection",
    "collection_statistics",
    "CollectionSpec",
    "SegmentSpec",
    "generate_collection",
    "clueweb09_mini",
    "wikipedia_mini",
    "congress_mini",
    "TrieTable",
    "BTree",
    "Dictionary",
    "DictionaryShard",
    "PostingsReader",
    "DocTable",
    "SearchEngine",
    "merge_index",
    "__version__",
]
