"""Shared indexer machinery.

Every indexer — CPU thread or GPU kernel — does the same functional job
(Fig 4): for each trie collection it owns, insert each term suffix into
the collection's B-tree and append the occurrence to the term's postings
list, using the global document ID (local ID + the offset the pipeline
assigns when the buffer is consumed).

:class:`IndexerReport` carries the Table V accounting (tokens, terms,
characters routed to this indexer) plus the B-tree work deltas the cost
models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dictionary.btree import BTreeStats
from repro.dictionary.dictionary import DictionaryShard
from repro.parsing.regroup import ParsedBatch
from repro.postings.lists import PostingsAccumulator

__all__ = ["BaseIndexer", "IndexerReport"]


@dataclass
class IndexerReport:
    """Work performed by one indexer over one batch (or accumulated)."""

    tokens: int = 0
    new_terms: int = 0
    characters: int = 0
    documents: int = 0
    collections: int = 0
    btree: BTreeStats = field(default_factory=BTreeStats)
    #: Modeled execution time in simulated seconds (filled by cost models).
    modeled_seconds: float = 0.0

    def merge(self, other: "IndexerReport") -> None:
        self.tokens += other.tokens
        self.new_terms += other.new_terms
        self.characters += other.characters
        self.documents += other.documents
        self.collections += other.collections
        self.btree.merge(other.btree)
        self.modeled_seconds += other.modeled_seconds


class BaseIndexer:
    """Common stream-consumption logic for CPU and GPU indexers.

    Parameters
    ----------
    indexer_id:
        Unique across the engine; also the dictionary shard id, which
        partitions the term-id space.
    shard:
        The exclusive dictionary shard this indexer owns.

    Thread contract
    ---------------
    ``index_batch`` is safe to run concurrently *across* indexers — each
    owns a disjoint dictionary shard and postings accumulator, and
    telemetry instruments are internally locked — but one indexer's
    batches must be consumed by a single thread at a time, in file order
    (the accumulator requires non-decreasing document IDs per term).
    The pipelined engine guarantees this by giving every indexer slot
    exactly one :class:`repro.core.pipeline_exec.IndexerWorker`.
    """

    kind = "base"

    def __init__(self, indexer_id: int, shard: DictionaryShard) -> None:
        self.indexer_id = indexer_id
        self.shard = shard
        self.accumulator = PostingsAccumulator()
        self.total = IndexerReport()

    @property
    def lane(self) -> str:
        """Stable trace-lane identity for this indexer's batch spans.

        One lane per indexer (== per worker thread in pipelined mode), so
        concurrent ``index_batch`` spans never interleave on a lane.
        """
        return f"{self.kind}-{self.indexer_id}"

    # ------------------------------------------------------------------ #

    def owns(self, collection_index: int) -> bool:
        return self.shard.owned is None or collection_index in self.shard.owned

    def _owned_collections(self, batch: ParsedBatch) -> list[int]:
        return [cidx for cidx in batch.collections if self.owns(cidx)]

    def _index_collection(
        self,
        cidx: int,
        stream: list[tuple[int, list[bytes]]],
        doc_offset: int,
        positions: list[list[int]] | None = None,
    ) -> IndexerReport:
        """Consume one trie collection's stream; returns the work report.

        This is the inner loop of Fig 4: every suffix is inserted into the
        collection's B-tree (getting the postings pointer) and the
        occurrence appended under the *global* document ID.  When the
        parser supplied ``positions`` (parallel to ``stream``), each
        occurrence also records its in-document token position.
        """
        tree = self.shard.tree_for(cidx)
        before = BTreeStats()
        before.merge(tree.stats)
        terms_before = tree.term_count

        add_occurrence = self.accumulator.add_occurrence
        insert = tree.insert
        report = IndexerReport(collections=1)
        for i, (local_doc, suffixes) in enumerate(stream):
            global_doc = doc_offset + local_doc
            report.documents += 1
            doc_positions = positions[i] if positions is not None else None
            for j, suffix in enumerate(suffixes):
                term_id, _ = insert(suffix)
                add_occurrence(
                    term_id,
                    global_doc,
                    doc_positions[j] if doc_positions is not None else None,
                )
                report.characters += len(suffix)
            report.tokens += len(suffixes)

        report.new_terms = tree.term_count - terms_before
        delta = BTreeStats()
        delta.merge(tree.stats)
        for name in BTreeStats.__dataclass_fields__:
            setattr(delta, name, getattr(delta, name) - getattr(before, name))
        report.btree = delta
        return report

    def index_batch(self, batch: ParsedBatch, doc_offset: int) -> IndexerReport:
        """Consume all owned collections of one parsed buffer."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #

    def drain_postings(self):
        """End-of-run handoff of accumulated postings (Fig 8)."""
        return self.accumulator.drain()
