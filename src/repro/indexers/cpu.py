"""The CPU indexer (Section III.D.1).

"A CPU indexer is executed by a single CPU thread, which follows the
commonly used procedures for building the B-tree and the corresponding
postings lists", with the node's 4-byte string cache consulted first on
every comparison.  The functional work is exactly
:meth:`~repro.indexers.base.BaseIndexer._index_collection`; what is CPU-
specific is the *cost model*: per-node-visit cost depends on whether the
collection's B-tree fits in the core's cache share.

Popular trie collections hold few distinct terms but enormous token
counts, so their small B-trees stay cache-resident and node visits are
cheap — the paper's entire rationale for routing popular collections to
the CPU.  :meth:`CPUIndexer.model_seconds` reproduces this: each
collection's visit cost interpolates between a cache-hit and a DRAM cost
by the fraction of the tree that fits in the modeled cache share.

It also supports consuming *ungrouped* streams (regrouping disabled) for
the ablation of Section III.C, where every token may hop to a different
B-tree and locality collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dictionary.layout import NODE_SIZE_BYTES
from repro.indexers.base import BaseIndexer, IndexerReport
from repro.obs import runtime as obs
from repro.parsing.regroup import ParsedBatch

__all__ = ["CPUIndexer", "CPUCostModel"]


@dataclass(frozen=True)
class CPUCostModel:
    """Per-operation costs for one Xeon X5560 core (2.8 GHz era).

    Tuned by :mod:`repro.analysis.calibration` so one CPU indexer thread
    reproduces the paper's ~129.5 MB/s indexing throughput on the
    ClueWeb09 profile (Table IV, column 2).
    """

    #: Seconds per token of stream handling (fetch suffix, postings append).
    per_token_s: float = 90e-9
    #: Seconds per B-tree node visit when the tree is cache-resident.
    node_visit_hot_s: float = 25e-9
    #: Seconds per node visit when the tree spills to DRAM.
    node_visit_cold_s: float = 260e-9
    #: Extra cost when a comparison dereferences the full string.
    full_fetch_s: float = 60e-9
    #: Cost of a node split (allocation + two node copies).
    split_s: float = 900e-9
    #: Cache share available to one indexer thread for hot B-trees
    #: (two quad-cores share 2×8MB L3; parsers compete for it too).
    cache_share_bytes: int = 3 * 1024 * 1024
    #: When regrouping is disabled, every token hops to a different one of
    #: 17,613 trees: each node visit is a dependent chain of cache/TLB
    #: misses with no reuse at all, far beyond the streaming "cold" cost
    #: above.  Calibrated to the paper's ~15× serial-indexer speedup claim
    #: for regrouping (§III.C).
    ungrouped_thrash: float = 9.0

    def visit_cost(self, tree_bytes: int) -> float:
        """Interpolated per-visit cost by cache residency."""
        if tree_bytes <= 0:
            return self.node_visit_hot_s
        resident = min(1.0, self.cache_share_bytes / tree_bytes)
        return resident * self.node_visit_hot_s + (1.0 - resident) * self.node_visit_cold_s


class CPUIndexer(BaseIndexer):
    """One indexer thread running on a CPU core."""

    kind = "cpu"

    def __init__(self, indexer_id, shard, cost_model: CPUCostModel | None = None) -> None:
        super().__init__(indexer_id, shard)
        self.cost = cost_model if cost_model is not None else CPUCostModel()

    # ------------------------------------------------------------------ #
    # Functional indexing
    # ------------------------------------------------------------------ #

    def index_batch(self, batch: ParsedBatch, doc_offset: int) -> IndexerReport:
        """Consume all owned collections of one parsed buffer.

        Telemetry is read from :func:`repro.obs.runtime.current` rather
        than held on the indexer: indexers are pickled into the resume
        checkpoint, and a tracer (with its lock) must never ride along.
        """
        report = IndexerReport()
        with obs.tracer().span(
            "index_batch", cat="index", lane=self.lane,
            file=batch.sequence,
            cp=f"index:{batch.sequence}", cp_from=f"dequeue:{batch.sequence}",
        ) as tags:
            if batch.ungrouped is not None:
                report.merge(self._index_ungrouped(batch, doc_offset))
            else:
                for cidx in self._owned_collections(batch):
                    positions = batch.positions.get(cidx) if batch.positions else None
                    sub = self._index_collection(
                        cidx, batch.collections[cidx], doc_offset, positions
                    )
                    sub.modeled_seconds = self._model_collection_seconds(cidx, sub)
                    report.merge(sub)
            tags["tokens"] = report.tokens
            tags["collections"] = report.collections
        self.total.merge(report)
        reg = obs.metrics()
        reg.count("index.cpu.tokens", report.tokens)
        reg.count("index.cpu.new_terms", report.new_terms)
        reg.count("btree.node_visits", report.btree.node_visits)
        reg.count("btree.node_splits", report.btree.splits)
        reg.count("btree.full_string_fetches", report.btree.full_string_fetches)
        return report

    def _index_ungrouped(self, batch: ParsedBatch, doc_offset: int) -> IndexerReport:
        """Ablation path: tokens in document order, no regrouping.

        Functionally equivalent (same dictionary, same postings) but every
        token hops to a different collection's tree, so the model charges
        cold-cache node visits throughout — the paper reports regrouping
        is worth ~15× for a serial indexer.
        """
        report = IndexerReport()
        touched: set[int] = set()
        assert batch.ungrouped is not None
        for local_doc, tokens in batch.ungrouped:
            global_doc = doc_offset + local_doc
            report.documents += 1
            for cidx, suffix in tokens:
                if not self.owns(cidx):
                    continue
                tree = self.shard.tree_for(cidx)
                visits_before = tree.stats.node_visits
                fetches_before = tree.stats.full_string_fetches
                splits_before = tree.stats.splits
                terms_before = tree.term_count
                term_id, _ = tree.insert(suffix)
                self.accumulator.add_occurrence(term_id, global_doc)
                touched.add(cidx)
                report.tokens += 1
                report.characters += len(suffix)
                report.new_terms += tree.term_count - terms_before
                visits = tree.stats.node_visits - visits_before
                cost = self.cost
                report.modeled_seconds += (
                    cost.per_token_s
                    + visits * cost.node_visit_cold_s * cost.ungrouped_thrash
                    + (tree.stats.full_string_fetches - fetches_before) * cost.full_fetch_s
                    + (tree.stats.splits - splits_before) * cost.split_s
                )
        report.collections = len(touched)
        return report

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def _model_collection_seconds(self, cidx: int, report: IndexerReport) -> float:
        """Modeled seconds for one regrouped collection's work."""
        tree = self.shard.trees[cidx]
        tree_bytes = tree.node_count * NODE_SIZE_BYTES + tree.store.byte_size
        cost = self.cost
        return (
            report.tokens * cost.per_token_s
            + report.btree.node_visits * cost.visit_cost(tree_bytes)
            + report.btree.full_string_fetches * cost.full_fetch_s
            + report.btree.splits * cost.split_s
        )
