"""The GPU indexer (Section III.D.2), running on the SIMT simulator.

One thread block (one 32-thread warp) builds one trie collection's B-tree
at a time:

1. term strings are staged from device memory into shared memory in
   coalesced 512-byte chunks (Fig 6 layout);
2. each node on the root-to-leaf path is loaded into shared memory with a
   coalesced 512-byte stream (the degree-16 node exists *because* 31 keys
   match the warp);
3. all 31 key comparisons happen in one SIMD step against the 4-byte
   caches, followed by a log₂32-step parallel reduction (Fig 7) to find
   the slot — a cache tie forces an uncoalesced full-string fetch;
4. inserts shift larger keys right in parallel and write the node back;
   preemptive splits copy half the node into a new sibling.

Two fidelity modes produce **identical indexes and identical cycle
charges**:

- ``fidelity="fast"`` (default) lets the shared ``BTree`` do slot search
  with binary comparison while cycles are charged from the op deltas —
  the right trade for corpus-scale runs;
- ``fidelity="warp"`` installs a ``find_slot_hook`` that literally runs
  :func:`~repro.gpusim.reduction.warp_find_slot` on every node visit, for
  tests and demonstrations.

The per-collection cycle totals become :class:`~repro.gpusim.kernel.WorkItem`
entries; a simulated kernel launch (dynamic round-robin over 480 blocks)
turns them into elapsed seconds, and PCIe transfers for input streams and
output postings are timed by the :class:`~repro.gpusim.device.Device` —
the pre/post-processing serialization the paper calls out as the limit on
multi-GPU scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dictionary.btree import BTree, BTreeNode, BTreeStats
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelResult, WorkItem
from repro.gpusim.reduction import warp_find_slot
from repro.gpusim.warp import WarpCounters, WarpExecutor
from repro.dictionary.layout import DEVICE_CHUNK_BYTES
from repro.indexers.base import BaseIndexer, IndexerReport
from repro.obs import runtime as obs
from repro.parsing.regroup import ParsedBatch

__all__ = ["GPUIndexer", "GPUBatchReport"]

#: Estimated device-side bytes per posting entry shipped back to the host.
_POSTING_BYTES = 8
#: Average suffix bytes fetched on a cache tie (full-string dereference).
_AVG_FETCH_BYTES = 8


@dataclass
class GPUBatchReport:
    """One batch's GPU-side outcome."""

    report: IndexerReport
    kernel: KernelResult | None = None
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0
    work_items: list[WorkItem] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        kernel_s = self.kernel.elapsed_seconds if self.kernel else 0.0
        return kernel_s + self.h2d_seconds + self.d2h_seconds


class GPUIndexer(BaseIndexer):
    """One GPU's indexer: a grid of warp thread blocks."""

    kind = "gpu"

    def __init__(
        self,
        indexer_id,
        shard,
        device: Device | None = None,
        num_blocks: int = 480,
        schedule: str = "dynamic",
        fidelity: str = "fast",
    ) -> None:
        super().__init__(indexer_id, shard)
        self.device = device if device is not None else Device(device_id=indexer_id)
        self.num_blocks = num_blocks
        self.schedule = schedule
        if fidelity not in ("fast", "warp"):
            raise ValueError(f"fidelity must be 'fast' or 'warp', got {fidelity!r}")
        self.fidelity = fidelity
        self.warp_counters = WarpCounters()
        self.batch_reports: list[GPUBatchReport] = []

    @property
    def lane(self) -> str:
        """GPU lanes key on the device ordinal, not the shard id."""
        return f"gpu-{self.device.device_id}"

    # ------------------------------------------------------------------ #
    # Warp-fidelity slot search (Fig 7, executed literally)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _warp_hook(tree: BTree, query: bytes, query4: bytes, node: BTreeNode):
        """``find_slot_hook`` running the parallel compare + reduction.

        The lane comparator delegates to the tree's cached comparison so
        the cache/full-fetch statistics stay identical to binary search
        *semantics*; the warp, of course, compares every key.
        """
        # Lane i's "key" is just its index; the comparator closes over the
        # node and runs the cached compare for that slot.
        lane_keys = list(range(node.nkeys))

        def compare(q: bytes, lane: int) -> int:
            return tree._compare(q, query4, node, lane)

        return warp_find_slot(query, lane_keys, compare=compare)

    # ------------------------------------------------------------------ #
    # Functional indexing + cycle charging
    # ------------------------------------------------------------------ #

    def index_batch(self, batch: ParsedBatch, doc_offset: int) -> GPUBatchReport:
        """Consume owned collections; simulate transfers + kernel launch.

        Telemetry comes from :func:`repro.obs.runtime.current` per call —
        indexers are pickled into the resume checkpoint and must not hold
        a tracer (see the CPU indexer).
        """
        if batch.ungrouped is not None:
            raise ValueError(
                "the GPU indexer requires regrouped parser output: one thread "
                "block processes one trie collection at a time"
            )
        with obs.tracer().span(
            "index_batch", cat="index", lane=self.lane,
            file=batch.sequence,
            cp=f"index:{batch.sequence}", cp_from=f"dequeue:{batch.sequence}",
        ) as tags:
            out = self._index_batch_traced(batch, doc_offset)
            tags["tokens"] = out.report.tokens
            tags["collections"] = out.report.collections
        self._emit_metrics(out)
        return out

    def _index_batch_traced(self, batch: ParsedBatch, doc_offset: int) -> GPUBatchReport:
        owned = self._owned_collections(batch)
        report = IndexerReport()
        items: list[WorkItem] = []

        # Pre-processing: ship this batch's owned streams to device memory
        # in the Fig 6 length-prefixed layout.
        h2d_bytes = 0
        for cidx in owned:
            for _, suffixes in batch.collections[cidx]:
                h2d_bytes += sum(len(s) + 1 for s in suffixes) + 8  # +docID header
        self.device.free_all()
        h2d_seconds = self.device.transfer_to_device(h2d_bytes) if h2d_bytes else 0.0

        for cidx in owned:
            warp = WarpExecutor(self.device.spec)
            tree = self.shard.tree_for(cidx)
            if self.fidelity == "warp":
                tree.find_slot_hook = self._warp_hook
            try:
                positions = batch.positions.get(cidx) if batch.positions else None
                sub = self._index_collection(
                    cidx, batch.collections[cidx], doc_offset, positions
                )
            finally:
                tree.find_slot_hook = None
            self._charge_collection(warp, sub.btree, sub.characters, sub.tokens)
            sub.modeled_seconds = self.device.spec.seconds(warp.counters.total_cycles)
            report.merge(sub)
            self.warp_counters.merge(warp.counters)
            items.append(
                WorkItem(
                    key=cidx,
                    compute_cycles=warp.counters.compute_cycles,
                    memory_stall_cycles=warp.counters.memory_stall_cycles,
                    bus_cycles=warp.counters.bus_cycles,
                )
            )

        kernel = (
            self.device.launch(items, num_blocks=self.num_blocks, schedule=self.schedule)
            if items
            else None
        )
        # Post-processing: postings generated this batch flow back to the
        # host for the run writer.
        d2h_bytes = report.tokens * _POSTING_BYTES
        d2h_seconds = self.device.transfer_from_device(d2h_bytes) if d2h_bytes else 0.0

        self.total.merge(report)
        out = GPUBatchReport(
            report=report,
            kernel=kernel,
            h2d_seconds=h2d_seconds,
            d2h_seconds=d2h_seconds,
            work_items=items,
        )
        self.batch_reports.append(out)
        return out

    def _emit_metrics(self, out: GPUBatchReport) -> None:
        """Deterministic per-batch counters/gauges (simulated quantities)."""
        report = out.report
        reg = obs.metrics()
        reg.count("index.gpu.tokens", report.tokens)
        reg.count("index.gpu.new_terms", report.new_terms)
        reg.count("btree.node_visits", report.btree.node_visits)
        reg.count("btree.node_splits", report.btree.splits)
        reg.count("btree.full_string_fetches", report.btree.full_string_fetches)
        reg.count("gpu.work_items", len(out.work_items))
        if out.kernel is not None:
            dev = self.device.device_id
            reg.count("gpu.kernel_launches")
            reg.count("gpu.elapsed_cycles", out.kernel.elapsed_cycles)
            # Simulated occupancy: how many of this launch's blocks were
            # resident per SM, and how unevenly work spread over blocks.
            reg.set_gauge(
                f"gpu.{dev}.resident_blocks_per_sm",
                out.kernel.resident_blocks_per_sm,
            )
            reg.set_gauge(f"gpu.{dev}.load_imbalance", out.kernel.load_imbalance)

    def _charge_collection(
        self, warp: WarpExecutor, delta: BTreeStats, characters: int, tokens: int
    ) -> None:
        """Charge warp cycles for one collection's B-tree op deltas.

        Identical totals in both fidelity modes: events, not wall time,
        drive the charges.
        """
        # Stage the collection's term strings through shared memory in
        # 512B coalesced chunks.
        stream_bytes = characters + tokens  # + length prefixes
        if stream_bytes:
            warp.load_string_chunk(count=-(-stream_bytes // DEVICE_CHUNK_BYTES))
        # Per node visit: coalesced node load + one SIMD compare step
        # against the 4-byte caches + the Fig 7 reduction.
        if delta.node_visits:
            warp.load_node(count=delta.node_visits)
            warp.parallel_compare(count=delta.node_visits)
            warp.reduce(count=delta.node_visits)
        # Cache ties dereference the full string (uncoalesced).
        if delta.full_string_fetches:
            warp.fetch_full_string(_AVG_FETCH_BYTES, count=delta.full_string_fetches)
        # Inserts shift larger keys right and dirty the node.
        if delta.inserts:
            warp.shift(0, count=delta.inserts)
            warp.writeback_node(count=delta.inserts)
        if delta.splits:
            warp.split(count=delta.splits)
        # Scalar bookkeeping: doc-ID handling, postings append per token.
        warp.scalar_op(steps=2 * tokens)
