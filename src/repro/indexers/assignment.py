"""Load balancing between CPU and GPU indexers (Section III.E).

The paper's procedure:

1. **Sample** the collection — "we extract a sample from the document
   collection, e.g. 1MB out of every 1GB, and run several tests on the
   sample to determine membership" — yielding per-trie-collection token
   counts.
2. **Popular collections** (those dominated by the most frequent terms;
   "there are relatively very few popular trie collections (around one
   hundred)") go to the CPU indexers, split into ``N₁`` sets "such that
   each contains almost the same number of tokens" (greedy LPT here).
3. **Unpopular collections** go to the GPUs by ``TC_i → GPU (i mod N₂)``
   — reproduced literally, including the paper's worked example.
4. The binding is for the program lifetime: "once a trie collection is
   assigned to a particular indexer, it is bound with this indexer
   through the program lifetime".

Collections never seen in the sample still need owners at run time; they
are routed by the same unpopular rule (they are, by construction of the
sample, rare).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.corpus.collection import Collection
from repro.parsing.parser import Parser
from repro.robustness.policy import RobustnessReport
from repro.robustness.retry import RetryPolicy, retry_call

__all__ = [
    "sample_collection",
    "PopularityPolicy",
    "WorkAssignment",
    "build_assignment",
]


def sample_collection(
    collection: Collection,
    sample_fraction: float = 0.001,
    min_docs_per_file: int = 1,
    strip_html: bool = True,
    max_files: int | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "strict",
    report: RobustnessReport | None = None,
) -> dict[int, int]:
    """Parse a small sample and return tokens per trie collection.

    The paper samples ~1MB per 1GB (fraction 0.001).  We take the leading
    ``fraction`` of documents from each file — cheap, deterministic, and
    stratified across the collection like the paper's per-GB scheme.

    ``retry`` wraps each container read in the backoff policy; with
    ``on_error != "strict"``, a permanently unreadable file simply does
    not contribute to the sample (the build loop applies the full skip /
    quarantine policy when it reaches the file).  Retry counts land on
    ``report`` when one is supplied.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError(f"sample fraction must be in (0, 1], got {sample_fraction}")
    parser = Parser(parser_id=-1, strip_html=strip_html)
    counts: dict[int, int] = {}
    files = collection.files[:max_files] if max_files else collection.files
    for path in files:
        from repro.parsing.docio import load_collection_file

        try:
            if retry is not None:
                loaded, outcome = retry_call(
                    lambda p=path: load_collection_file(p), retry, path
                )
                if report is not None:
                    report.merge_outcome(outcome.retries, outcome.backoff_s)
            else:
                loaded = load_collection_file(path)
        except (ValueError, OSError, RuntimeError) as exc:
            from repro.robustness.errors import FatalFault

            if isinstance(exc, FatalFault) or on_error == "strict":
                raise
            continue  # skipped from the sample only; the build decides later
        n = max(min_docs_per_file, int(len(loaded.texts) * sample_fraction))
        batch, _ = parser.parse_texts(loaded.texts[:n], source_file=path)
        for cidx, tok in batch.tokens_per_collection.items():
            counts[cidx] = counts.get(cidx, 0) + tok
    return counts


@dataclass(frozen=True)
class PopularityPolicy:
    """How sampled token counts become the popular set.

    ``max_popular`` caps the set near the paper's "around one hundred";
    ``token_coverage`` stops adding collections once the popular set
    covers this fraction of sampled tokens (popular collections are the
    Zipf head, which concentrates mass).
    """

    max_popular: int = 128
    token_coverage: float = 0.5

    def classify(self, sampled_tokens: dict[int, int]) -> tuple[list[int], list[int]]:
        """Returns ``(popular, unpopular)`` collection-index lists."""
        total = sum(sampled_tokens.values())
        ranked = sorted(sampled_tokens, key=lambda c: (-sampled_tokens[c], c))
        popular: list[int] = []
        covered = 0
        for cidx in ranked:
            if len(popular) >= self.max_popular:
                break
            if total and covered / total >= self.token_coverage:
                break
            popular.append(cidx)
            covered += sampled_tokens[cidx]
        popular_set = set(popular)
        unpopular = sorted(c for c in sampled_tokens if c not in popular_set)
        return sorted(popular), unpopular


@dataclass
class WorkAssignment:
    """The lifetime binding of trie collections to indexers."""

    cpu_sets: list[set[int]] = field(default_factory=list)
    gpu_sets: list[set[int]] = field(default_factory=list)
    popular: list[int] = field(default_factory=list)
    unpopular: list[int] = field(default_factory=list)
    sampled_tokens: dict[int, int] = field(default_factory=dict)
    #: GPU ordinals that died mid-build (their slot now holds a CPU
    #: fallback indexer); unseen collections route around them.
    failed_gpus: set[int] = field(default_factory=set)

    @property
    def num_cpu(self) -> int:
        return len(self.cpu_sets)

    @property
    def num_gpu(self) -> int:
        return len(self.gpu_sets)

    def owner_of(self, cidx: int) -> tuple[str, int]:
        """``("cpu", i)`` or ``("gpu", j)`` for any collection index.

        Sampled collections use their recorded binding; unseen ones follow
        the default routing rule (GPU ``i mod N₂`` when GPUs exist, else
        CPU ``i mod N₁``).
        """
        for i, s in enumerate(self.cpu_sets):
            if cidx in s:
                return ("cpu", i)
        for j, s in enumerate(self.gpu_sets):
            if cidx in s:
                return ("gpu", j)
        if self.gpu_sets:
            alive = [
                j for j in range(len(self.gpu_sets)) if j not in self.failed_gpus
            ]
            if alive:
                return ("gpu", alive[cidx % len(alive)])
            # Every GPU failed over: the slots all hold CPU fallbacks, so
            # the original routing rule is safe again.
            return ("gpu", cidx % len(self.gpu_sets))
        if self.cpu_sets:
            return ("cpu", cidx % len(self.cpu_sets))
        raise ValueError("assignment has neither CPU nor GPU indexers")

    def bind_unseen(self, cidx: int) -> tuple[str, int]:
        """Route and *record* a collection not present in the sample."""
        kind, idx = self.owner_of(cidx)
        (self.cpu_sets if kind == "cpu" else self.gpu_sets)[idx].add(cidx)
        return kind, idx

    def mark_gpu_failed(self, ordinal: int) -> None:
        """Stop routing *unseen* collections to a dead GPU.

        Collections already bound to the GPU keep their ``("gpu", j)``
        owner — the engine replaces that slot with a CPU fallback indexer
        adopting the same dictionary shard, so term ids stay identical.
        """
        if not 0 <= ordinal < len(self.gpu_sets):
            raise IndexError(f"no GPU ordinal {ordinal} (have {len(self.gpu_sets)})")
        self.failed_gpus.add(ordinal)


def _split_balanced(collections: list[int], weights: dict[int, int], n_sets: int) -> list[set[int]]:
    """Greedy LPT: heaviest collection → currently lightest set."""
    sets: list[set[int]] = [set() for _ in range(n_sets)]
    if not n_sets:
        return sets
    heap: list[tuple[int, int]] = [(0, i) for i in range(n_sets)]
    heapq.heapify(heap)
    for cidx in sorted(collections, key=lambda c: (-weights.get(c, 0), c)):
        load, i = heapq.heappop(heap)
        sets[i].add(cidx)
        heapq.heappush(heap, (load + weights.get(cidx, 0), i))
    return sets


def build_assignment(
    sampled_tokens: dict[int, int],
    num_cpu_indexers: int,
    num_gpus: int,
    policy: PopularityPolicy | None = None,
) -> WorkAssignment:
    """Produce the Section III.E binding from sampled token counts.

    With no GPUs every collection is a "CPU collection" and the popular
    split degenerates to balancing everything across the CPU indexers
    (the paper's scenarios (ii)/(iii)).  With no CPU indexers everything
    goes to the GPUs by ``i mod N₂`` (scenario (i)).
    """
    if num_cpu_indexers < 0 or num_gpus < 0:
        raise ValueError("indexer counts must be non-negative")
    if num_cpu_indexers == 0 and num_gpus == 0:
        raise ValueError("need at least one indexer")
    policy = policy if policy is not None else PopularityPolicy()

    if num_gpus == 0:
        all_collections = sorted(sampled_tokens)
        popular, unpopular = policy.classify(sampled_tokens)
        return WorkAssignment(
            cpu_sets=_split_balanced(all_collections, sampled_tokens, num_cpu_indexers),
            gpu_sets=[],
            popular=popular,
            unpopular=unpopular,
            sampled_tokens=dict(sampled_tokens),
        )

    if num_cpu_indexers == 0:
        popular, unpopular = policy.classify(sampled_tokens)
        gpu_sets: list[set[int]] = [set() for _ in range(num_gpus)]
        for cidx in sampled_tokens:
            gpu_sets[cidx % num_gpus].add(cidx)
        return WorkAssignment(
            cpu_sets=[],
            gpu_sets=gpu_sets,
            popular=popular,
            unpopular=unpopular,
            sampled_tokens=dict(sampled_tokens),
        )

    popular, unpopular = policy.classify(sampled_tokens)
    cpu_sets = _split_balanced(popular, sampled_tokens, num_cpu_indexers)
    gpu_sets = [set() for _ in range(num_gpus)]
    for cidx in unpopular:
        gpu_sets[cidx % num_gpus].add(cidx)
    return WorkAssignment(
        cpu_sets=cpu_sets,
        gpu_sets=gpu_sets,
        popular=popular,
        unpopular=unpopular,
        sampled_tokens=dict(sampled_tokens),
    )
