"""CPU and GPU indexers plus the Section III.E load balancer.

An *indexer* consumes per-collection parsed streams (the output of Step 5
regrouping) and builds its exclusive shard of the dictionary plus the
postings lists.  The paper runs some indexers as CPU threads (the
*popular* trie collections, whose hot B-tree paths live in cache) and the
rest as GPU kernels (the long tail of *unpopular* collections, where warp
parallelism inside each node wins).

- :mod:`repro.indexers.base` — shared stream-consumption logic + stats.
- :mod:`repro.indexers.cpu` — the CPU indexer thread (Section III.D.1).
- :mod:`repro.indexers.gpu` — the warp B-tree indexer (Section III.D.2),
  running against :mod:`repro.gpusim`.
- :mod:`repro.indexers.assignment` — sampling, popular/unpopular
  classification, token-balanced CPU split and ``i mod N₂`` GPU split
  (Section III.E).
"""

from repro.indexers.assignment import (
    PopularityPolicy,
    WorkAssignment,
    build_assignment,
    sample_collection,
)
from repro.indexers.base import BaseIndexer, IndexerReport
from repro.indexers.cpu import CPUIndexer
from repro.indexers.gpu import GPUBatchReport, GPUIndexer

__all__ = [
    "BaseIndexer",
    "IndexerReport",
    "CPUIndexer",
    "GPUIndexer",
    "GPUBatchReport",
    "sample_collection",
    "PopularityPolicy",
    "WorkAssignment",
    "build_assignment",
]
