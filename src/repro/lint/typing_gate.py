"""Typing gate: run mypy when installed, degrade gracefully offline.

The gate has two halves:

- **RPR007** (:mod:`repro.lint.rules`) — a dependency-free
  annotation-completeness check over the gated packages; always runs.
- **mypy** — full type *consistency* at the strictness pinned in
  ``pyproject.toml`` (``[tool.mypy]`` plus per-package
  ``disallow_untyped_defs`` overrides).  mypy is a dev extra installed in
  CI; on machines without it :func:`run_mypy` reports "unavailable"
  instead of failing, so ``repro lint`` stays usable everywhere.

mypy diagnostics are mapped to lint findings under code ``RPR201`` so
both halves flow through the same output formats and exit-code logic.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.lint.framework import Finding

__all__ = ["mypy_available", "run_mypy", "MYPY_CODE"]

MYPY_CODE = "RPR201"

_LINE_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+)(?::(?P<col>\d+))?:\s*"
    r"(?P<severity>error|note|warning):\s*(?P<message>.*)$"
)


def mypy_available() -> bool:
    """Is the mypy API importable in this environment?"""
    try:
        import mypy.api  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(paths: Iterable[str]) -> tuple[list[Finding], bool]:
    """Run mypy over ``paths``; returns ``(findings, available)``.

    ``available=False`` means mypy is not installed here (the offline
    case) — callers should say so rather than treat it as a pass.
    Configuration comes from ``pyproject.toml`` in the working directory,
    the same file CI uses, so local and CI runs agree.
    """
    try:
        from mypy import api
    except ImportError:
        return [], False
    stdout, _stderr, _status = api.run([*paths, "--no-error-summary"])
    findings: list[Finding] = []
    for line in stdout.splitlines():
        m = _LINE_RE.match(line)
        if m is None or m.group("severity") == "note":
            continue
        findings.append(
            Finding(
                code=MYPY_CODE,
                path=m.group("path").replace("\\", "/"),
                line=int(m.group("line")),
                col=int(m.group("col") or 1),
                message=f"mypy: {m.group('message')}",
            )
        )
    return findings, True
