"""Rule framework for ``repro lint``: findings, registry, suppressions.

A *rule* is a function taking a :class:`SourceFile` and yielding
:class:`Finding` objects.  Rules register themselves with :func:`rule`
under a stable code (``RPR001`` …); the runner parses each file once,
applies every selected rule, and filters findings through the two
suppression mechanisms:

- ``# repro-lint: disable=CODE[,CODE...]`` on the offending line;
- ``# repro-lint: disable-file=CODE[,CODE...]`` anywhere in the file.

This module is stdlib-only by design — see :mod:`repro.lint`.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "rule",
    "registered_rules",
    "lint_paths",
    "format_text",
    "format_json",
]

_DISABLE_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")
#: Marks a function as a thread-pool / callback entry point for the race
#: analyzer (same line as the ``def`` or the line directly above it).
WORKER_ENTRY_RE = re.compile(r"#\s*repro-lint:\s*worker-entry")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule code anchored to a file position."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered check."""

    code: str
    name: str
    check: Callable[["SourceFile"], Iterable[Finding]]
    description: str


_REGISTRY: dict[str, Rule] = {}


def rule(code: str, name: str) -> Callable[[Callable[["SourceFile"], Iterable[Finding]]], Callable[["SourceFile"], Iterable[Finding]]]:
    """Register ``check`` under ``code``; the docstring is the description."""

    def decorate(check: Callable[["SourceFile"], Iterable[Finding]]) -> Callable[["SourceFile"], Iterable[Finding]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = Rule(code, name, check, (check.__doc__ or "").strip())
        return check

    return decorate


def registered_rules() -> dict[str, Rule]:
    """Code → rule, for ``repro lint --list-rules`` and the tests."""
    return dict(_REGISTRY)


class SourceFile:
    """One parsed file handed to every rule.

    ``path`` is normalized to forward slashes so rules can scope
    themselves by path fragments (``"/postings/" in sf.path``) on any
    platform; ``parts`` is the tuple of path components.
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.parts = tuple(p for p in self.path.split("/") if p)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._line_disables: dict[int, set[str]] | None = None
        self._file_disables: set[str] | None = None

    # -- suppressions ------------------------------------------------- #

    def _scan_suppressions(self) -> None:
        per_line: dict[int, set[str]] = {}
        whole: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            m = _DISABLE_LINE_RE.search(line)
            if m:
                codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
                per_line.setdefault(lineno, set()).update(codes)
            m = _DISABLE_FILE_RE.search(line)
            if m:
                whole.update(c.strip() for c in m.group(1).split(",") if c.strip())
        self._line_disables = per_line
        self._file_disables = whole

    def suppressed(self, code: str, line: int) -> bool:
        """Is ``code`` disabled on ``line`` (or for the whole file)?"""
        if self._line_disables is None:
            self._scan_suppressions()
        assert self._line_disables is not None and self._file_disables is not None
        if code in self._file_disables:
            return True
        return code in self._line_disables.get(line, set())

    def worker_entry_lines(self) -> set[int]:
        """Line numbers carrying a ``worker-entry`` marker."""
        return {
            lineno
            for lineno, line in enumerate(self.lines, start=1)
            if WORKER_ENTRY_RE.search(line)
        }

    def in_part(self, *names: str) -> bool:
        """True when any path component equals one of ``names``."""
        return any(name in self.parts for name in names)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".bench_data", "build", "dist"}


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS and not d.startswith("."))
            for name in sorted(files):
                if name.endswith(".py"):
                    full = os.path.join(root, name)
                    if full not in seen:
                        seen.add(full)
                        yield full


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: int = 0


def lint_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
) -> LintRun:
    """Run the selected rules (default: all registered) over ``paths``."""
    codes = sorted(select) if select is not None else sorted(_REGISTRY)
    unknown = [c for c in codes if c not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown lint rule code(s): {', '.join(unknown)}")
    run = LintRun()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            sf = SourceFile(path, text)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            run.parse_errors += 1
            lineno = getattr(exc, "lineno", None) or 1
            run.findings.append(
                Finding("RPR000", path.replace(os.sep, "/"), lineno, 1, f"cannot parse: {exc}")
            )
            continue
        run.files_checked += 1
        for code in codes:
            for finding in _REGISTRY[code].check(sf):
                if not sf.suppressed(finding.code, finding.line):
                    run.findings.append(finding)
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return run


# ---------------------------------------------------------------------- #
# Output
# ---------------------------------------------------------------------- #


def format_text(run: LintRun) -> str:
    """Human-readable one-line-per-finding report with a trailer."""
    out = [f.render() for f in run.findings]
    plural = "s" if run.files_checked != 1 else ""
    out.append(
        f"{len(run.findings)} finding(s) in {run.files_checked} file{plural} checked"
    )
    return "\n".join(out)


def format_json(run: LintRun, extra: dict[str, object] | None = None) -> str:
    """Machine-readable report (findings, per-code counts, file stats)."""
    counts: dict[str, int] = {}
    for f in run.findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    payload: dict[str, object] = {
        "findings": [f.to_dict() for f in run.findings],
        "counts": counts,
        "files_checked": run.files_checked,
        "parse_errors": run.parse_errors,
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
