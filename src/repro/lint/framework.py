"""Rule framework for ``repro lint``: findings, registry, suppressions.

A *rule* is a function taking a :class:`SourceFile` and yielding
:class:`Finding` objects.  Rules register themselves with :func:`rule`
under a stable code (``RPR001`` …); the runner parses each file once,
applies every selected rule, and filters findings through the two
suppression mechanisms:

- ``# repro-lint: disable=CODE[,CODE...]`` on the offending line;
- ``# repro-lint: disable-file=CODE[,CODE...]`` anywhere in the file.

This module is stdlib-only by design — see :mod:`repro.lint`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "LintCache",
    "rule",
    "register_project_builder",
    "registered_rules",
    "lint_paths",
    "format_text",
    "format_json",
]

_DISABLE_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")
#: Marks a function as a thread-pool / callback entry point for the race
#: analyzer (same line as the ``def`` or the line directly above it).
WORKER_ENTRY_RE = re.compile(r"#\s*repro-lint:\s*worker-entry")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule code anchored to a file position."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered check.

    ``scope`` is ``"file"`` for rules that only look at one file, or
    ``"project"`` for rules whose verdict on a file depends on *other*
    files in the run (the interprocedural analyses).  The cache stores
    the two finding sets separately: file-scope findings survive as long
    as the file's content hash does, project-scope findings only as long
    as the whole tree's hash does.
    """

    code: str
    name: str
    check: Callable[["SourceFile"], Iterable[Finding]]
    description: str
    scope: str = "file"


_REGISTRY: dict[str, Rule] = {}

#: Hooks run once per lint invocation, before any project-scope rule,
#: with every parsed file of the run — this is how the interprocedural
#: layer builds its cross-module model without the framework importing it.
_PROJECT_BUILDERS: list[Callable[[list["SourceFile"]], None]] = []


def rule(code: str, name: str, scope: str = "file") -> Callable[[Callable[["SourceFile"], Iterable[Finding]]], Callable[["SourceFile"], Iterable[Finding]]]:
    """Register ``check`` under ``code``; the docstring is the description."""
    if scope not in ("file", "project"):
        raise ValueError(f"bad rule scope {scope!r}")

    def decorate(check: Callable[["SourceFile"], Iterable[Finding]]) -> Callable[["SourceFile"], Iterable[Finding]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = Rule(code, name, check, (check.__doc__ or "").strip(), scope)
        return check

    return decorate


def register_project_builder(builder: Callable[[list["SourceFile"]], None]) -> None:
    """Register a once-per-run hook fed every parsed file (see above)."""
    _PROJECT_BUILDERS.append(builder)


def registered_rules() -> dict[str, Rule]:
    """Code → rule, for ``repro lint --list-rules`` and the tests."""
    return dict(_REGISTRY)


class SourceFile:
    """One parsed file handed to every rule.

    ``path`` is normalized to forward slashes so rules can scope
    themselves by path fragments (``"/postings/" in sf.path``) on any
    platform; ``parts`` is the tuple of path components.
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.parts = tuple(p for p in self.path.split("/") if p)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._line_disables: dict[int, set[str]] | None = None
        self._file_disables: set[str] | None = None
        #: Side-channel facts rules record while checking (e.g. which race
        #: allowlist entries actually matched).  Facts are cached alongside
        #: findings, so a cache hit replays them — analyses built on facts
        #: (allowlist staleness) stay sound under incremental runs.
        self.facts: dict[str, list[str]] = {}

    def record_fact(self, kind: str, value: str) -> None:
        """Record a JSON-serializable fact for this file (see ``facts``)."""
        self.facts.setdefault(kind, []).append(value)

    # -- suppressions ------------------------------------------------- #

    def _scan_suppressions(self) -> None:
        per_line: dict[int, set[str]] = {}
        whole: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            m = _DISABLE_LINE_RE.search(line)
            if m:
                codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
                per_line.setdefault(lineno, set()).update(codes)
            m = _DISABLE_FILE_RE.search(line)
            if m:
                whole.update(c.strip() for c in m.group(1).split(",") if c.strip())
        self._line_disables = per_line
        self._file_disables = whole

    def suppressed(self, code: str, line: int) -> bool:
        """Is ``code`` disabled on ``line`` (or for the whole file)?"""
        if self._line_disables is None:
            self._scan_suppressions()
        assert self._line_disables is not None and self._file_disables is not None
        if code in self._file_disables:
            return True
        return code in self._line_disables.get(line, set())

    def worker_entry_lines(self) -> set[int]:
        """Line numbers carrying a ``worker-entry`` marker."""
        return {
            lineno
            for lineno, line in enumerate(self.lines, start=1)
            if WORKER_ENTRY_RE.search(line)
        }

    def in_part(self, *names: str) -> bool:
        """True when any path component equals one of ``names``."""
        return any(name in self.parts for name in names)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".bench_data", "build", "dist"}


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS and not d.startswith("."))
            for name in sorted(files):
                if name.endswith(".py"):
                    full = os.path.join(root, name)
                    if full not in seen:
                        seen.add(full)
                        yield full


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: int = 0
    #: Normalized paths of every file the run covered (hits and misses).
    files: list[str] = field(default_factory=list)
    #: Aggregated :attr:`SourceFile.facts` across the run.
    facts: dict[str, list[str]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


# ---------------------------------------------------------------------- #
# Incremental cache
# ---------------------------------------------------------------------- #

_CACHE_VERSION = 1


class LintCache:
    """Per-file findings keyed by content hash under ``.repro-lint-cache/``.

    An entry is valid when the *salt* (lint-package sources, allowlist
    content, selected codes) and the file's content hash both match;
    file-scope findings and facts are then reused without parsing.  The
    entry additionally remembers the whole run's *tree hash* — the hash
    of every ``(path, content-hash)`` pair — and project-scope findings
    are reused only while that matches, since an interprocedural verdict
    on an unchanged file can change when a *different* file changes.  On
    a fully unchanged tree nothing is parsed at all.
    """

    DEFAULT_DIR = ".repro-lint-cache"

    def __init__(self, root: str | None = None) -> None:
        self.root = root or self.DEFAULT_DIR

    # -- keys ---------------------------------------------------------- #

    @staticmethod
    def salt(codes: Iterable[str], extra: Iterable[str] = ()) -> str:
        """Hash of everything besides file content that affects findings."""
        h = hashlib.sha256(f"v{_CACHE_VERSION}".encode())
        for code in sorted(codes):
            h.update(code.encode())
        lint_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(lint_dir)):
            if not name.endswith((".py", ".txt")):
                continue
            h.update(name.encode())
            with open(os.path.join(lint_dir, name), "rb") as fh:
                h.update(hashlib.sha256(fh.read()).digest())
        for item in extra:
            h.update(item.encode())
        return h.hexdigest()

    def _entry_path(self, salt: str, path: str) -> str:
        digest = hashlib.sha256(f"{salt}:{path}".encode()).hexdigest()
        return os.path.join(self.root, f"{digest}.json")

    # -- IO ------------------------------------------------------------- #

    def load(self, salt: str, path: str, content_sha: str) -> dict | None:
        try:
            with open(self._entry_path(salt, path), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("content_sha") != content_sha:
            return None
        return entry

    def store(self, salt: str, path: str, entry: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        tmp = self._entry_path(salt, path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        os.replace(tmp, self._entry_path(salt, path))  # repro-lint: disable=RPR004 - cache entries are disposable, not durable state


def _findings_to_json(findings: list[Finding]) -> list[dict[str, object]]:
    return [f.to_dict() for f in findings]


def _findings_from_json(raw: list[dict]) -> list[Finding]:
    return [
        Finding(str(d["code"]), str(d["path"]), int(d["line"]),  # type: ignore[arg-type]
                int(d["col"]), str(d["message"]))  # type: ignore[arg-type]
        for d in raw
    ]


def lint_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    cache: LintCache | None = None,
) -> LintRun:
    """Run the selected rules (default: all registered) over ``paths``."""
    codes = sorted(select) if select is not None else sorted(_REGISTRY)
    unknown = [c for c in codes if c not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown lint rule code(s): {', '.join(unknown)}")
    file_codes = [c for c in codes if _REGISTRY[c].scope == "file"]
    project_codes = [c for c in codes if _REGISTRY[c].scope == "project"]
    run = LintRun()

    # Phase 1: read + hash everything (the tree hash needs all of it).
    contents: list[tuple[str, str, str]] = []  # (path, text, content_sha)
    tree = hashlib.sha256()
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        sha = hashlib.sha256(text.encode()).hexdigest()
        contents.append((path, text, sha))
        tree.update(path.replace(os.sep, "/").encode())
        tree.update(sha.encode())
    tree_sha = tree.hexdigest()
    salt = cache.salt(codes) if cache is not None else ""

    def _apply(sf: SourceFile, rule_codes: list[str]) -> list[Finding]:
        found: list[Finding] = []
        for code in rule_codes:
            for finding in _REGISTRY[code].check(sf):
                if not sf.suppressed(finding.code, finding.line):
                    found.append(finding)
        return found

    # Phase 2: serve what we can from the cache; parse the rest.
    parsed: list[tuple[SourceFile, str, dict | None]] = []
    for path, text, sha in contents:
        norm = path.replace(os.sep, "/")
        entry = cache.load(salt, path, sha) if cache is not None else None
        if entry is not None and (
            not project_codes or entry.get("tree_sha") == tree_sha
        ):
            run.cache_hits += 1
            run.files_checked += 1
            run.files.append(norm)
            run.findings.extend(_findings_from_json(entry["local"]))
            run.findings.extend(_findings_from_json(entry.get("project", [])))
            for kind, values in entry.get("facts", {}).items():
                run.facts.setdefault(kind, []).extend(values)
            continue
        try:
            sf = SourceFile(path, text)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            run.parse_errors += 1
            lineno = getattr(exc, "lineno", None) or 1
            run.findings.append(
                Finding("RPR000", norm, lineno, 1, f"cannot parse: {exc}")
            )
            continue
        run.cache_misses += 1
        run.files_checked += 1
        run.files.append(norm)
        parsed.append((sf, sha, entry))

    # Phase 3: file-scope rules (reusing content-valid entries), then the
    # project model over every parsed file, then project-scope rules.
    results: list[tuple[SourceFile, str, list[Finding], list[Finding]]] = []
    for sf, sha, entry in parsed:
        if entry is not None:
            local = _findings_from_json(entry["local"])
            for kind, values in entry.get("facts", {}).items():
                sf.facts.setdefault(kind, []).extend(values)
        else:
            local = _apply(sf, file_codes)
        results.append((sf, sha, local, []))
    if project_codes and parsed:
        for builder in _PROJECT_BUILDERS:
            builder([sf for sf, _, _ in parsed])
    for i, (sf, sha, local, _) in enumerate(results):
        project = _apply(sf, project_codes) if project_codes else []
        results[i] = (sf, sha, local, project)
        run.findings.extend(local)
        run.findings.extend(project)
        for kind, values in sf.facts.items():
            run.facts.setdefault(kind, []).extend(values)
        if cache is not None:
            cache.store(salt, sf.path, {
                "content_sha": sha,
                "tree_sha": tree_sha,
                "local": _findings_to_json(local),
                "project": _findings_to_json(project),
                "facts": sf.facts,
            })

    run.files.sort()
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return run


# ---------------------------------------------------------------------- #
# Output
# ---------------------------------------------------------------------- #


def format_text(run: LintRun) -> str:
    """Human-readable one-line-per-finding report with a trailer."""
    out = [f.render() for f in run.findings]
    plural = "s" if run.files_checked != 1 else ""
    out.append(
        f"{len(run.findings)} finding(s) in {run.files_checked} file{plural} checked"
    )
    return "\n".join(out)


def format_json(run: LintRun, extra: dict[str, object] | None = None) -> str:
    """Machine-readable report (findings, per-code counts, file stats)."""
    counts: dict[str, int] = {}
    for f in run.findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    payload: dict[str, object] = {
        "findings": [f.to_dict() for f in run.findings],
        "counts": counts,
        "files_checked": run.files_checked,
        "parse_errors": run.parse_errors,
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
