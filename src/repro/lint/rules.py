"""Paper-invariant lint rules (RPR001–RPR008, RPR110).

Each rule documents the invariant it protects and the paper section the
invariant comes from.  Rules are pure AST checks over one
:class:`~repro.lint.framework.SourceFile`; suppressions and allowlists
are handled by the framework.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.framework import Finding, SourceFile, rule

__all__ = ["LAYOUT_LITERALS", "GATED_PACKAGES", "CLOCK_FNS"]

#: Table I/II values that must never be re-typed outside
#: ``repro/dictionary/layout.py``: the 512-byte node (Table II), the
#: 17,613-entry trie table and its 26³ = 17,576 tail (Table I).
LAYOUT_LITERALS = {512, 17613, 17576}  # repro-lint: disable=RPR001 - the rule's own definition

#: Packages under the RPR007 annotation-completeness gate (mirrors the
#: per-package mypy strictness overrides in pyproject.toml).
GATED_PACKAGES = ("core", "dictionary", "postings", "robustness")

#: ``time``-module clocks that RPR008 fences behind ``util/timing.py``.
CLOCK_FNS = {
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "time", "time_ns", "process_time", "process_time_ns", "clock_gettime",
}

#: ``random``-module calls that touch the unseeded global generator.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "seed", "gauss", "normalvariate",
    "expovariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "randbytes",
}


def _iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _arg_defaults(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[tuple[ast.arg, ast.expr]]:
    """(argument, default) pairs, positional and keyword-only alike."""
    args = node.args
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        yield arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield arg, default


# ---------------------------------------------------------------------- #
# RPR001 — layout constants come from repro.dictionary.layout
# ---------------------------------------------------------------------- #


@rule("RPR001", "layout-literal")
def check_layout_literals(sf: SourceFile) -> Iterator[Finding]:
    """Table I/II layout values must come from ``repro.dictionary.layout``.

    Re-typing 512 / 17613 / 17576 (or defaulting a ``degree`` parameter
    to a literal 16) re-derives the paper's node and trie geometry in a
    second place; the two copies then drift independently.
    """
    if sf.parts and sf.parts[-1] == "layout.py":
        return
    defaulted_degrees: set[tuple[int, int]] = set()
    for fn in _iter_functions(sf.tree):
        for arg, default in _arg_defaults(fn):
            if (
                arg.arg == "degree"
                and isinstance(default, ast.Constant)
                and default.value == 16
            ):
                defaulted_degrees.add((default.lineno, default.col_offset))
                yield sf.finding(
                    "RPR001",
                    default,
                    "parameter 'degree' defaults to literal 16; "
                    "use repro.dictionary.layout.DEFAULT_DEGREE",
                )
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.keyword) and node.arg == "degree":
            value = node.value
            if isinstance(value, ast.Constant) and value.value == 16:
                yield sf.finding(
                    "RPR001",
                    value,
                    "call passes degree=16 as a literal; "
                    "use repro.dictionary.layout.DEFAULT_DEGREE",
                )
                defaulted_degrees.add((value.lineno, value.col_offset))
        if (
            isinstance(node, ast.Constant)
            and type(node.value) is int
            and node.value in LAYOUT_LITERALS
        ):
            yield sf.finding(
                "RPR001",
                node,
                f"layout literal {node.value} duplicates a Table I/II value; "
                "import it from repro.dictionary.layout",
            )


# ---------------------------------------------------------------------- #
# RPR002 — randomness flows through repro.util.rng
# ---------------------------------------------------------------------- #


@rule("RPR002", "unseeded-random")
def check_unseeded_random(sf: SourceFile) -> Iterator[Finding]:
    """No unseeded ``random`` / ``numpy.random`` outside ``util/rng.py``.

    Every stochastic choice in the reproduction must derive from an
    explicit seed (the paper's experiments are re-runnable); the global
    generators make runs unrepeatable.
    """
    if sf.path.endswith("util/rng.py"):
        return
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = sorted(
                alias.name for alias in node.names if alias.name in _GLOBAL_RANDOM_FNS
            )
            if bad:
                yield sf.finding(
                    "RPR002",
                    node,
                    f"imports global-state random function(s) {', '.join(bad)}; "
                    "use repro.util.rng.make_rng",
                )
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "random" and func.attr in _GLOBAL_RANDOM_FNS:
                yield sf.finding(
                    "RPR002",
                    node,
                    f"random.{func.attr}() uses the unseeded global generator; "
                    "use repro.util.rng.make_rng",
                )
            elif base == "random" and func.attr == "Random" and not (node.args or node.keywords):
                yield sf.finding(
                    "RPR002",
                    node,
                    "random.Random() without a seed is not reproducible; "
                    "pass an explicit seed or use repro.util.rng.make_rng",
                )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
        ):
            yield sf.finding(
                "RPR002",
                node,
                f"numpy.random.{func.attr}() bypasses the seeded generator "
                "discipline; use repro.util.rng.make_rng",
            )


# ---------------------------------------------------------------------- #
# RPR003 — encode paths are float-free
# ---------------------------------------------------------------------- #


def _encode_scope(name: str) -> bool:
    return "encode" in name or name.startswith(("write", "_write"))


@rule("RPR003", "float-in-encode")
def check_float_in_encode(sf: SourceFile) -> Iterator[Finding]:
    """No float arithmetic in ``postings/`` and ``util/bitio.py`` encode paths.

    Compressed output must be bit-identical across platforms and Python
    builds; floats (true division, float literals, ``math.*``) introduce
    rounding that can silently change an emitted code.
    """
    if not (sf.in_part("postings") or sf.path.endswith("util/bitio.py")):
        return
    for fn in _iter_functions(sf.tree):
        if not _encode_scope(fn.name):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Constant) and type(node.value) is float:
                yield sf.finding(
                    "RPR003",
                    node,
                    f"float literal {node.value!r} inside encode path "
                    f"'{fn.name}'; use exact integer arithmetic",
                )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield sf.finding(
                    "RPR003",
                    node,
                    f"true division inside encode path '{fn.name}' produces a "
                    "float; use // with explicit rounding",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "float":
                    yield sf.finding(
                        "RPR003", node, f"float() call inside encode path '{fn.name}'"
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "math"
                ):
                    yield sf.finding(
                        "RPR003",
                        node,
                        f"math.{func.attr}() inside encode path '{fn.name}' "
                        "routes through floats; use integer arithmetic",
                    )


# ---------------------------------------------------------------------- #
# RPR004 — fsync before atomic rename
# ---------------------------------------------------------------------- #


@rule("RPR004", "rename-without-fsync")
def check_fsync_before_rename(sf: SourceFile) -> Iterator[Finding]:
    """``os.replace``/``os.rename`` must be preceded by ``os.fsync``.

    The crash-durability argument of the checkpoint layer (write temp →
    fsync → rename) only holds when the data hits the platter before the
    rename makes it visible; a rename without fsync can surface an empty
    file after power loss.
    """
    for fn in _iter_functions(sf.tree):
        fsync_lines = [
            node.lineno
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fsync"
        ]
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("replace", "rename")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                continue
            if not any(line < node.lineno for line in fsync_lines):
                yield sf.finding(
                    "RPR004",
                    node,
                    f"os.{node.func.attr}() in '{fn.name}' without a preceding "
                    "os.fsync(); the rename is not crash-durable",
                )


# ---------------------------------------------------------------------- #
# RPR005 — no broad excepts outside robustness/
# ---------------------------------------------------------------------- #


def _is_broad(expr: ast.expr | None) -> bool:
    if expr is None:
        return True
    if isinstance(expr, ast.Name) and expr.id in ("Exception", "BaseException"):
        return True
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(elt) for elt in expr.elts)
    return False


def _forwards_to_future(handler: ast.ExceptHandler) -> bool:
    """True if the handler calls ``<obj>.set_exception(<caught name>)``."""
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_exception"
            and any(
                isinstance(arg, ast.Name) and arg.id == handler.name
                for arg in node.args
            )
        ):
            return True
    return False


@rule("RPR005", "broad-except")
def check_broad_except(sf: SourceFile) -> Iterator[Finding]:
    """No bare/broad ``except`` outside ``robustness/``.

    Only the fault-handling layer is allowed to catch everything (it
    classifies and re-routes); anywhere else a broad except hides
    corruption the robustness tests are designed to surface.
    """
    if sf.in_part("robustness"):
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node.type):
            continue
        # A handler that re-raises unconditionally is logging, not hiding.
        if any(isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in node.body):
            continue
        # A handler that forwards the caught exception into a Future
        # (``future.set_exception(exc)``) is cross-thread propagation,
        # not hiding — the waiter's ``result()`` re-raises it.
        if node.name and _forwards_to_future(node):
            continue
        what = "bare except" if node.type is None else "broad except"
        yield sf.finding(
            "RPR005",
            node,
            f"{what} swallows errors the robustness layer should classify; "
            "catch specific exceptions (broad catches live in robustness/)",
        )


# ---------------------------------------------------------------------- #
# RPR006 — no mutable default arguments
# ---------------------------------------------------------------------- #


@rule("RPR006", "mutable-default")
def check_mutable_defaults(sf: SourceFile) -> Iterator[Finding]:
    """No mutable default arguments anywhere under ``src/``.

    A shared default list/dict/set aliases state across calls — in the
    engine that means across *builds*, breaking run-to-run determinism.
    """
    for fn in _iter_functions(sf.tree):
        for arg, default in _arg_defaults(fn):
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                yield sf.finding(
                    "RPR006",
                    default,
                    f"mutable default for parameter '{arg.arg}' of '{fn.name}' "
                    "is shared across calls; default to None instead",
                )


# ---------------------------------------------------------------------- #
# RPR007 — annotation completeness in the gated packages
# ---------------------------------------------------------------------- #


@rule("RPR007", "missing-annotation")
def check_annotations(sf: SourceFile) -> Iterator[Finding]:
    """Full signature annotations in core/, dictionary/, postings/, robustness/.

    The offline half of the typing gate: the same packages mypy checks
    with ``disallow_untyped_defs`` in CI must carry complete signatures,
    so the gate holds even where mypy is not installed.
    """
    if not sf.in_part(*GATED_PACKAGES):
        return
    for fn in _iter_functions(sf.tree):
        missing: list[str] = []
        args = fn.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            yield sf.finding(
                "RPR007",
                fn,
                f"'{fn.name}' has unannotated parameter(s): {', '.join(missing)}",
            )
        if fn.returns is None:
            yield sf.finding(
                "RPR007", fn, f"'{fn.name}' is missing a return annotation"
            )


# ---------------------------------------------------------------------- #
# RPR008 — clocks flow through util/timing.py (and obs/)
# ---------------------------------------------------------------------- #


@rule("RPR008", "adhoc-clock")
def check_adhoc_clocks(sf: SourceFile) -> Iterator[Finding]:
    """Wall-clock reads go through ``util/timing.py`` (telemetry exempt).

    Telemetry quarantines nondeterminism into one place: every timestamp
    comes from the blessed ``repro.util.timing.now`` clock, so the
    determinism tests can reason about exactly which artifacts carry
    wall-clock data (docs/OBSERVABILITY.md).  An ad-hoc
    ``time.perf_counter()`` sprinkled elsewhere creates a second timing
    source that the span tracer cannot see and the tests cannot exclude.

    Only *calls* are flagged — passing ``time.monotonic`` as a clock
    callable (dependency injection, as in ``robustness/retry.py``) keeps
    the read swappable and is fine.

    ``obs/profile.py`` is fenced by name alongside ``util/timing.py``:
    a sampling profiler *is* a clock consumer (its tick loop reads
    ``time.monotonic`` directly to schedule deterministic intervals), so
    it belongs inside the fence rather than suppressed line by line —
    same rationale as the blessed timing module itself.

    The fence also covers ``timeit.default_timer`` — the clock benchmark
    scripts habitually reach for — because the rule runs over
    ``benchmarks/`` too (``make lint`` / CI select RPR008 there):
    benchmark timing must flow through the ``repro bench`` harness or
    ``util/timing.py`` so every number in a ``BENCH_*.json`` comes from
    the same clock the protocol documents.
    """
    if sf.path.endswith(("util/timing.py", "obs/profile.py")) or sf.in_part("obs"):
        return
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                bad = sorted(
                    alias.name for alias in node.names if alias.name in CLOCK_FNS
                )
                if bad:
                    yield sf.finding(
                        "RPR008",
                        node,
                        f"imports clock function(s) {', '.join(bad)} from time; "
                        "use repro.util.timing.now / Stopwatch",
                    )
            elif node.module == "timeit" and any(
                alias.name == "default_timer" for alias in node.names
            ):
                yield sf.finding(
                    "RPR008",
                    node,
                    "imports default_timer from timeit; benchmark clocks go "
                    "through the repro bench harness / repro.util.timing",
                )
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in CLOCK_FNS
        ):
            yield sf.finding(
                "RPR008",
                node,
                f"ad-hoc time.{func.attr}() call; clocks are fenced behind "
                "repro.util.timing (now / Stopwatch) so telemetry and the "
                "determinism tests see every timing source",
            )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "timeit"
            and func.attr == "default_timer"
        ):
            yield sf.finding(
                "RPR008",
                node,
                "ad-hoc timeit.default_timer() call; benchmark clocks go "
                "through the repro bench harness / repro.util.timing",
            )


# ---------------------------------------------------------------------- #
# RPR110 — multiprocessing entry points are fork-bomb-safe
# ---------------------------------------------------------------------- #

#: Constructors that create OS processes (or a pool of them).
_PROCESS_CTORS = {"Process", "Pool", "ProcessPoolExecutor"}


def _is_main_guard(node: ast.If) -> bool:
    """True for ``if __name__ == "__main__":`` (either operand order)."""
    test = node.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)):
        return False
    operands = [test.left, *test.comparators]
    names = {o.id for o in operands if isinstance(o, ast.Name)}
    consts = {o.value for o in operands if isinstance(o, ast.Constant)}
    return "__name__" in names and "__main__" in consts


def _ctor_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@rule("RPR110", "unsafe-mp-entry")
def check_mp_entry_points(sf: SourceFile) -> Iterator[Finding]:
    """Process-spawning code must be fork-bomb-safe under ``spawn``.

    The ``spawn`` start method re-imports the ``__main__`` module in
    every child, so a ``Process``/``Pool``/``ProcessPoolExecutor``
    constructed at module top level (outside a function or an
    ``if __name__ == "__main__"`` guard) re-executes in each child and
    forks without bound.  The multiprocess execution backend keeps every
    worker entry point a module-level function in a leaf module
    (``core/mp_worker.py``); this rule holds the rest of the tree to the
    same layout.  A ``lambda`` target is flagged too: it does not pickle
    under ``spawn``, so code relying on it silently becomes
    fork-start-method-only.
    """
    # Nodes whose subtree may construct processes freely: function bodies
    # (only run when called) and ``__main__``-guarded blocks.
    safe: set[int] = set()
    for node in ast.walk(sf.tree):
        inner: Iterable[ast.AST] = ()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            inner = ast.walk(node)
        elif isinstance(node, ast.If) and _is_main_guard(node):
            inner = (n for stmt in node.body for n in ast.walk(stmt))
        for sub in inner:
            if isinstance(sub, ast.Call):
                safe.add(id(sub))
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _ctor_name(node.func)
        if name not in _PROCESS_CTORS:
            continue
        if id(node) not in safe:
            yield sf.finding(
                "RPR110",
                node,
                f"{name}(...) at module top level re-executes on import in "
                "every spawn-start-method child (fork bomb); move it inside "
                'a function or an ``if __name__ == "__main__"`` guard',
            )
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Lambda):
                yield sf.finding(
                    "RPR110",
                    kw.value,
                    f"lambda target for {name}(...) does not pickle under "
                    "the spawn start method; use a module-level function",
                )
