"""repro lint — the reproduction's static-analysis pack.

Three layers, all driven by ``repro lint`` (or ``make lint``):

1. **Paper-invariant rules** (RPR0xx, :mod:`repro.lint.rules`): AST checks
   that keep the codebase honest about the paper's layout and numeric
   contracts — Table I/II constants must come from
   :mod:`repro.dictionary.layout`, randomness must flow through
   :mod:`repro.util.rng`, encode paths stay float-free, atomic renames
   fsync first, and so on.
2. **Lock-discipline race analyzer** (RPR1xx, :mod:`repro.lint.races`):
   a lockset analysis over the threaded parts of the engine — unguarded
   writes to state shared with worker threads, and lock-order cycles.
3. **Typing gate** (RPR2xx, :mod:`repro.lint.typing_gate`): an
   annotation-completeness gate over the paper-critical packages, plus a
   wrapper that runs mypy when it is installed (CI installs it; the gate
   degrades gracefully offline).

Design constraint: this package is **stdlib-only** and must never import
the engine (or anything else under ``repro.*``) at runtime — linting a
tree must not execute it.  ``tests/test_lint.py`` and the CI lint job both
assert this.
"""

from repro.lint.framework import Finding, lint_paths, registered_rules
from repro.lint import interproc, protocol, races, rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "Finding", "lint_paths", "registered_rules", "interproc", "protocol",
    "races", "rules",
]
