"""Lock-discipline race analyzer (RPR101 unguarded writes, RPR102 cycles).

A lightweight, per-module lockset analysis for the threaded parts of the
engine (prefetch pool, fault-injection hooks):

1. **Worker entries.**  A function is a worker entry when it is passed to
   ``Thread(target=...)`` / ``pool.submit(...)`` / ``executor.map(...)``,
   or carries a ``# repro-lint: worker-entry`` marker (for callbacks
   invoked from worker threads through an indirection the AST cannot
   follow, e.g. the injected container read path).
2. **Worker-reachable set.**  Entries plus everything they transitively
   call or reference by name inside the same module (bare calls, ``self``
   method calls, and functions passed as callbacks).
3. **Shared state.**  ``self.<attr>`` accessed from worker-reachable
   methods, and module globals read there that some function declares
   ``global``.
4. **RPR101.**  Any write to shared state — from *any* function, worker
   or not — must be lexically inside a ``with <lock>`` block, in
   ``__init__``/``__post_init__`` (happens-before thread start), through
   a ``threading.local()`` object, through a parameter (ownership was
   passed in), or vetted in the allowlist file.
5. **RPR102.**  Nested ``with lockA: … with lockB:`` pairs define a
   lock-order graph; a cycle means two code paths can acquire the same
   locks in opposite orders and deadlock.

The allowlist (``race_allowlist.txt`` next to this module, overridable
via :func:`set_allowlist_path`) holds vetted single-writer fields as
``<path-suffix>::<Class.attr | global>`` lines.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.framework import Finding, SourceFile, rule

__all__ = [
    "set_allowlist_path",
    "load_allowlist",
    "load_allowlist_lines",
    "stale_allowlist_findings",
    "allowlist_path",
    "DEFAULT_ALLOWLIST_PATH",
    "USED_ALLOWLIST_FACT",
]

DEFAULT_ALLOWLIST_PATH = os.path.join(os.path.dirname(__file__), "race_allowlist.txt")

_allowlist_path = DEFAULT_ALLOWLIST_PATH
_LOCKISH_RE = re.compile(r"lock|mutex", re.IGNORECASE)
_POOL_DISPATCH = ("submit", "map", "apply_async")


#: Fact kind under which RPR101 records every allowlist entry that
#: actually suppressed (or would suppress) a finding — the staleness
#: check consumes these, and the cache replays them on hits.
USED_ALLOWLIST_FACT = "race-allowlist-used"


def set_allowlist_path(path: str | None) -> None:
    """Point the analyzer at a different allowlist (``None`` = default)."""
    global _allowlist_path
    _allowlist_path = path if path is not None else DEFAULT_ALLOWLIST_PATH


def allowlist_path() -> str:
    """The allowlist file the analyzer currently consults."""
    return _allowlist_path


def load_allowlist_lines(path: str | None = None) -> list[tuple[int, str, str]]:
    """Parse ``<path-suffix>::<key>`` lines as ``(lineno, suffix, key)``."""
    target = path if path is not None else _allowlist_path
    entries: list[tuple[int, str, str]] = []
    if not os.path.exists(target):
        return entries
    with open(target, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "::" not in line:
                raise ValueError(
                    f"{target}: malformed allowlist line {line!r} "
                    "(expected <path-suffix>::<Class.attr | global>)"
                )
            suffix, key = line.split("::", 1)
            entries.append((lineno, suffix.strip(), key.strip()))
    return entries


def load_allowlist(path: str | None = None) -> list[tuple[str, str]]:
    """Parse ``<path-suffix>::<key>`` lines; ``#`` starts a comment."""
    return [(suffix, key) for _, suffix, key in load_allowlist_lines(path)]


def _allowlisted(
    path: str, key: str, entries: list[tuple[str, str]]
) -> tuple[str, str] | None:
    """The matching allowlist entry, or ``None``."""
    short = key.rsplit(".", 1)[-1]
    for suffix, entry_key in entries:
        if not path.endswith(suffix):
            continue
        if key == entry_key or short == entry_key.rsplit(".", 1)[-1]:
            return (suffix, entry_key)
    return None


def stale_allowlist_findings(
    files: list[str], used: set[str], path: str | None = None
) -> list[Finding]:
    """RPR103 findings for entries that no longer match any source.

    An entry is *stale* when its file suffix matched a file the run
    actually analyzed, yet the entry never suppressed anything there —
    the vetted write it documented is gone.  Entries whose file was not
    part of the run are left alone (nothing can be concluded).  Like the
    mypy bridge (RPR201), this runs at the CLI layer, not as a
    registered per-file rule: its input is a whole run, not one file.
    """
    target = path if path is not None else _allowlist_path
    findings: list[Finding] = []
    for lineno, suffix, key in load_allowlist_lines(target):
        if not any(f.endswith(suffix) for f in files):
            continue
        if f"{suffix}::{key}" in used:
            continue
        findings.append(
            Finding(
                "RPR103",
                target.replace(os.sep, "/"),
                lineno,
                1,
                f"stale race-allowlist entry '{suffix}::{key}': no write in "
                f"the analyzed tree matches it any more — remove the entry "
                "(or re-vet the code it used to cover)",
            )
        )
    return findings


# ---------------------------------------------------------------------- #
# Module model
# ---------------------------------------------------------------------- #


@dataclass(eq=False)  # identity semantics: _Func objects live in sets
class _Func:
    """One function/method with the scope facts the analysis needs."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: str | None
    parent: "_Func | None"
    params: set[str] = field(default_factory=set)
    locals: set[str] = field(default_factory=set)
    globals_decl: set[str] = field(default_factory=set)
    nonlocals_decl: set[str] = field(default_factory=set)

    def resolves_locally(self, name: str) -> bool:
        """Is ``name`` a parameter/local of this or an enclosing function?"""
        func: _Func | None = self
        while func is not None:
            if name in func.params or name in func.locals:
                return True
            func = func.parent
        return False


def _own_walk(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Yield nodes of ``fn``'s body without descending into nested defs."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


class _ModuleModel:
    """Functions, thread-locals, and name resolution for one module."""

    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.functions: list[_Func] = []
        self.by_node: dict[ast.AST, _Func] = {}
        self.by_name: dict[str, list[_Func]] = {}
        self.threadlocals: set[str] = set()
        self._collect(sf.tree, class_name=None, parent=None, prefix="")
        for tl in ast.walk(sf.tree):
            if (
                isinstance(tl, ast.Assign)
                and isinstance(tl.value, ast.Call)
                and self._is_threading_local(tl.value.func)
            ):
                for target in tl.targets:
                    if isinstance(target, ast.Name):
                        self.threadlocals.add(target.id)

    @staticmethod
    def _is_threading_local(func: ast.expr) -> bool:
        if isinstance(func, ast.Name) and func.id == "local":
            return True
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "local"
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        )

    def _collect(
        self,
        node: ast.AST,
        class_name: str | None,
        parent: _Func | None,
        prefix: str,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._collect(child, child.name, parent, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = _Func(
                    node=child,
                    qualname=f"{prefix}{child.name}",
                    class_name=class_name,
                    parent=parent,
                )
                args = child.args
                for arg in (
                    args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    func.params.add(arg.arg)
                for sub in _own_walk(child):
                    if isinstance(sub, ast.Global):
                        func.globals_decl.update(sub.names)
                    elif isinstance(sub, ast.Nonlocal):
                        func.nonlocals_decl.update(sub.names)
                    elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                        func.locals.add(sub.id)
                self.functions.append(func)
                self.by_node[child] = func
                self.by_name.setdefault(child.name, []).append(func)
                self._collect(child, class_name, func, f"{prefix}{child.name}.")
            else:
                # Recurse through if/try/with blocks so defs nested in
                # control flow still register under the right scope.
                self._collect(child, class_name, parent, prefix)

    def methods_of(self, class_name: str | None) -> dict[str, _Func]:
        return {
            f.node.name: f for f in self.functions if f.class_name == class_name
        }

    def statements_of(self, func: _Func) -> Iterator[ast.AST]:
        """Walk ``func``'s own body, not its nested function definitions."""
        return _own_walk(func.node)


# ---------------------------------------------------------------------- #
# Worker-reachable set
# ---------------------------------------------------------------------- #


def _worker_entries(model: _ModuleModel) -> set[_Func]:
    entries: set[_Func] = set()
    marker_lines = model.sf.worker_entry_lines()
    for func in model.functions:
        if func.node.lineno in marker_lines or (func.node.lineno - 1) in marker_lines:
            entries.add(func)
    for node in ast.walk(model.sf.tree):
        if not isinstance(node, ast.Call):
            continue
        candidates: list[ast.expr] = []
        func_expr = node.func
        if isinstance(func_expr, ast.Attribute) and func_expr.attr in _POOL_DISPATCH:
            if node.args:
                candidates.append(node.args[0])
        if (
            isinstance(func_expr, ast.Name) and func_expr.id == "Thread"
        ) or (
            isinstance(func_expr, ast.Attribute) and func_expr.attr == "Thread"
        ):
            for kw in node.keywords:
                if kw.arg == "target":
                    candidates.append(kw.value)
        for cand in candidates:
            if isinstance(cand, ast.Name):
                entries.update(model.by_name.get(cand.id, ()))
            elif (
                isinstance(cand, ast.Attribute)
                and isinstance(cand.value, ast.Name)
                and cand.value.id == "self"
            ):
                entries.update(model.by_name.get(cand.attr, ()))
    return entries


def _reachable(model: _ModuleModel, entries: set[_Func]) -> set[_Func]:
    reached = set(entries)
    frontier = list(entries)
    while frontier:
        func = frontier.pop()
        for node in model.statements_of(func):
            targets: list[_Func] = []
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                targets.extend(model.by_name.get(node.id, ()))
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                method = model.methods_of(func.class_name).get(node.attr)
                if method is not None:
                    targets.append(method)
            for target in targets:
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
    return reached


def _shared_state(
    model: _ModuleModel, workers: set[_Func]
) -> tuple[set[tuple[str, str]], set[str]]:
    """(class, attr) pairs and global names touched by worker code."""
    shared_attrs: set[tuple[str, str]] = set()
    module_globals_decl: set[str] = set()
    for func in model.functions:
        module_globals_decl.update(func.globals_decl)
    shared_globals: set[str] = set()
    for func in workers:
        for node in model.statements_of(func):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and func.class_name is not None
            ):
                shared_attrs.add((func.class_name, node.attr))
            elif isinstance(node, ast.Name) and node.id in module_globals_decl:
                shared_globals.add(node.id)
    return shared_attrs, shared_globals


# ---------------------------------------------------------------------- #
# Write-site scan (RPR101)
# ---------------------------------------------------------------------- #

_CONSTRUCTORS = ("__init__", "__post_init__", "__new__")


def _base_of_target(target: ast.expr) -> ast.expr:
    """Peel subscripts/attribute chains down to the owning expression.

    ``self._hits[key]`` → ``self._hits`` (the shared container);
    ``obj.attr`` → ``obj.attr``.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    return target


def _write_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return
        yield node.target


def _locked_spans(func: _Func) -> list[tuple[int, int]]:
    """(first, last) line ranges of ``with <lock>`` bodies in ``func``."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(func.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = ast.unparse(item.context_expr)
            if _LOCKISH_RE.search(expr):
                last = max(
                    (getattr(n, "end_lineno", n.lineno) or n.lineno)
                    for n in ast.walk(node)
                    if hasattr(n, "lineno")
                )
                spans.append((node.lineno, last))
                break
    return spans


def _is_locked(lineno: int, spans: list[tuple[int, int]]) -> bool:
    return any(first <= lineno <= last for first, last in spans)


@rule("RPR101", "unguarded-shared-write")
def check_unguarded_writes(sf: SourceFile) -> Iterator[Finding]:
    """Writes to state shared with worker threads must hold a lock.

    State is *shared* when worker-reachable code touches it; every write
    — including main-thread writes racing worker reads — needs a lock,
    construction-time initialization, thread-local storage, or a vetted
    allowlist entry (``race_allowlist.txt``).
    """
    model = _ModuleModel(sf)
    workers = _reachable(model, _worker_entries(model))
    if not workers:
        return
    shared_attrs, shared_globals = _shared_state(model, workers)
    shared_attr_names = {attr for _, attr in shared_attrs}
    allow = load_allowlist()

    for func in model.functions:
        if func.node.name in _CONSTRUCTORS:
            continue
        spans = _locked_spans(func)
        for node in model.statements_of(func):
            for raw_target in _write_targets(node):
                target = _base_of_target(raw_target)
                key: str | None = None
                desc = ""
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    base = target.value.id
                    if base in model.threadlocals:
                        continue
                    if base == "self":
                        if (func.class_name, target.attr) in shared_attrs:
                            key = f"{func.class_name}.{target.attr}"
                            desc = f"attribute 'self.{target.attr}'"
                    elif not func.resolves_locally(base):
                        # Write through a module-level object (e.g. the
                        # installed injector): match shared attrs by name.
                        if target.attr in shared_attr_names:
                            key = target.attr
                            desc = f"attribute '{base}.{target.attr}'"
                elif isinstance(target, ast.Name):
                    if target.id in func.globals_decl and target.id in shared_globals:
                        key = target.id
                        desc = f"module global '{target.id}'"
                    elif (
                        target.id in func.nonlocals_decl
                        and func in workers
                    ):
                        key = target.id
                        desc = f"closure variable '{target.id}'"
                if key is None:
                    continue
                if _is_locked(node.lineno, spans):
                    continue
                matched = _allowlisted(sf.path, key, allow)
                if matched is not None:
                    sf.record_fact(USED_ALLOWLIST_FACT, f"{matched[0]}::{matched[1]}")
                    continue
                yield sf.finding(
                    "RPR101",
                    node,
                    f"unguarded write to {desc} in '{func.qualname}' — it is "
                    "shared with worker-entry code; guard with a lock or add "
                    "a vetted race_allowlist.txt entry",
                )


# ---------------------------------------------------------------------- #
# Lock-order cycles (RPR102)
# ---------------------------------------------------------------------- #


@rule("RPR102", "lock-order-cycle")
def check_lock_order(sf: SourceFile) -> Iterator[Finding]:
    """Nested lock acquisitions must follow one global order.

    ``with A: with B`` in one path and ``with B: with A`` in another can
    deadlock; the analyzer builds the acquisition graph over all nested
    ``with <lock>`` statements and reports every cycle once.
    """
    edges: dict[tuple[str, str], ast.AST] = {}

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        acquired = held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            names = [
                ast.unparse(item.context_expr)
                for item in node.items
                if _LOCKISH_RE.search(ast.unparse(item.context_expr))
            ]
            for name in names:
                for outer in acquired:
                    if outer != name:
                        edges.setdefault((outer, name), node)
                acquired = acquired + (name,)
        for child in ast.iter_child_nodes(node):
            visit(child, acquired)

    visit(sf.tree, ())

    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)

    reported: set[frozenset[str]] = set()

    def find_cycle(start: str) -> list[str] | None:
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for succ in graph.get(node, ()):
                if succ == start:
                    return path + [start]
                if succ not in path:
                    stack.append((succ, path + [succ]))
        return None

    for start in sorted(graph):
        cycle = find_cycle(start)
        if cycle is None:
            continue
        members = frozenset(cycle)
        if members in reported:
            continue
        reported.add(members)
        anchor = edges[(cycle[0], cycle[1])]
        yield sf.finding(
            "RPR102",
            anchor,
            "lock-order cycle: " + " -> ".join(cycle) + " — two paths acquire "
            "these locks in opposite orders and can deadlock",
        )
