"""Bounded explicit-state model checker for the protocol verifier.

``repro lint --protocol`` proves cross-process invariants (no torn
frame, no lost frame under replay, no double unlink, heartbeat
monotonicity) by *exhaustive exploration*: the protocols in
:mod:`repro.lint.protocol` are encoded as small transition systems, and
this module enumerates every reachable interleaving of their actions —
including injected crash points — with state hashing so each state is
visited once.

The checker is deliberately tiny and stdlib-only (the lint package must
never import the engine):

- a *model* is any object with ``name``, ``initial_states()``,
  ``actions(state)``, ``invariants()`` and ``is_terminal(state)``;
- states are hashable values (tuples of tuples all the way down);
- :func:`explore` runs a breadth-first sweep, checks every invariant in
  every state, records predecessor links, and reconstructs a minimal
  counterexample trace for the first violation of each invariant;
- a non-terminal state with no enabled action is reported as a
  *deadlock* — that is how the bounded-wait family of properties is
  checked (a correct SPSC ring can never wedge both sides at once).

Exhaustiveness is the point: a chaos test samples a handful of
schedules, the checker visits all of them (within the model's bounds),
so "the invariant held" means *no* interleaving breaks it, not "none of
the ones we happened to run".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Protocol

__all__ = [
    "Model",
    "Violation",
    "ExploreResult",
    "explore",
]

State = Hashable


class Model(Protocol):
    """What :func:`explore` needs from a transition system."""

    name: str

    def initial_states(self) -> Iterable[State]:
        """All starting states (usually one)."""
        ...

    def actions(self, state: State) -> Iterable[tuple[str, State]]:
        """Enabled ``(label, successor)`` pairs in ``state``."""
        ...

    def invariants(self) -> "list[tuple[str, Callable[[State], str | None]]]":
        """``(family, check)`` pairs; ``check`` returns an error or None."""
        ...

    def is_terminal(self, state: State) -> bool:
        """True when ``state`` is an *expected* quiescent end state."""
        ...


@dataclass(frozen=True)
class Violation:
    """One invariant failure with its minimal counterexample."""

    invariant: str
    detail: str
    trace: tuple[str, ...]
    state: State

    def render(self) -> str:
        steps = " -> ".join(self.trace) if self.trace else "<initial>"
        return f"{self.invariant}: {self.detail}\n  trace: {steps}"


@dataclass
class ExploreResult:
    """Everything one exhaustive sweep established."""

    model: str
    states: int = 0
    transitions: int = 0
    elapsed_s: float = 0.0
    #: True when the frontier drained before hitting ``max_states``.
    complete: bool = True
    violations: list[Violation] = field(default_factory=list)
    deadlocks: list[Violation] = field(default_factory=list)
    terminal_states: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.deadlocks and self.complete

    def invariant_families(self, model: Model) -> dict[str, bool]:
        """Family → held?, over the model's declared invariants."""
        broken = {v.invariant for v in self.violations}
        return {name: name not in broken for name, _ in model.invariants()}


def _trace_to(
    state: State, parents: "dict[State, tuple[State, str] | None]"
) -> tuple[str, ...]:
    labels: list[str] = []
    cursor: State | None = state
    while cursor is not None:
        link = parents[cursor]
        if link is None:
            break
        cursor, label = link
        labels.append(label)
    return tuple(reversed(labels))


def explore(
    model: Model,
    max_states: int = 500_000,
    first_violation_only: bool = True,
) -> ExploreResult:
    """Breadth-first exhaustive exploration with state hashing.

    Visits every state reachable from the initial states (bounded by
    ``max_states`` as a runaway backstop — a completed sweep reports
    ``complete=True``), evaluates every invariant in every state, and
    flags non-terminal states with no enabled action as deadlocks.  With
    ``first_violation_only`` each invariant family reports only its
    shortest counterexample (BFS order makes the first one minimal).
    """
    t0 = time.perf_counter()  # repro-lint: disable=RPR008 - checker self-timing, never a build artifact
    result = ExploreResult(model=model.name)
    invariants = model.invariants()
    seen_families: set[str] = set()
    parents: "dict[State, tuple[State, str] | None]" = {}
    frontier: list[State] = []
    for init in model.initial_states():
        if init not in parents:
            parents[init] = None
            frontier.append(init)
    cursor = 0
    deadlock_reported = False
    while cursor < len(frontier):
        state = frontier[cursor]
        cursor += 1
        result.states += 1
        for family, check in invariants:
            if first_violation_only and family in seen_families:
                continue
            detail = check(state)
            if detail is not None:
                seen_families.add(family)
                result.violations.append(
                    Violation(family, detail, _trace_to(state, parents), state)
                )
        enabled = 0
        for label, succ in model.actions(state):
            enabled += 1
            result.transitions += 1
            if succ not in parents:
                parents[succ] = (state, label)
                frontier.append(succ)
        if enabled == 0:
            if model.is_terminal(state):
                result.terminal_states += 1
            elif not (first_violation_only and deadlock_reported):
                deadlock_reported = True
                result.deadlocks.append(
                    Violation(
                        "bounded-wait",
                        "non-terminal state with no enabled action (deadlock)",
                        _trace_to(state, parents),
                        state,
                    )
                )
        if result.states >= max_states:
            result.complete = False
            break
    result.elapsed_s = time.perf_counter() - t0  # repro-lint: disable=RPR008 - checker self-timing
    return result
