"""The cross-process protocol verifier (``repro lint --protocol``).

The multiprocess execution backend's correctness story rests on a
hand-rolled protocol: SPSC shared-memory byte rings with copy-then-
publish counters (``core/shm_ring.py``), a journal-before-send dispatch
discipline with incarnation-bounded replay (``core/mp_backend.py``), and
a created-segment registry swept exactly once by its owner.  This module
encodes those three protocols as small transition systems and lets the
bounded model checker (:mod:`repro.lint.modelcheck`) exhaustively
explore every producer/consumer/crash interleaving within the model
bounds, proving four invariant families:

- **torn-frame** — a consumer never observes a byte that differs from
  what the producer published for that stream position (covers
  wraparound, chunked frames, and resumable partial reads);
- **lost-frame-under-replay** — every dispatched task is collected
  exactly once, across worker crashes and journal replays;
- **double-unlink** — no shared-memory segment is ever unlinked by a
  non-owner or unlinked twice;
- **heartbeat-monotonicity** — a supervisor never observes a liveness
  counter move backwards within one worker incarnation.

Each model has *bug knobs* (``bug=...``) that re-introduce the exact
mistakes the real code avoids — publishing ``tail`` before the copy,
sending before journaling, sweeping an inherited registry — so the
tests can prove the checker actually distinguishes the correct protocol
from its mutations (a checker that passes everything proves nothing).

**Model–code conformance.**  A model is only evidence about the code if
the code does what the model says.  The RPR12x rules at the bottom are
AST checks pinning ``shm_ring.py`` / ``mp_backend.py`` to the modeled
update *order*: publish-after-copy (RPR120), journal-before-send
(RPR121), heartbeats written only by ``beat`` as a ``load+1`` increment
(RPR122), and attach/unlink registry hygiene (RPR123).  When a refactor
changes the order, the lint run fails even though the model still
passes — the model cannot silently drift from the code.

Everything here is stdlib-only and never imports the engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Iterator

from repro.lint.framework import Finding, SourceFile, rule
from repro.lint.modelcheck import ExploreResult, explore

__all__ = [
    "RingProtocolModel",
    "SupervisorProtocolModel",
    "SegmentProtocolModel",
    "ProtocolReport",
    "default_models",
    "verify_protocol",
    "INVARIANT_FAMILIES",
]

#: The four families ``repro lint --protocol`` must prove.
INVARIANT_FAMILIES = (
    "torn-frame",
    "lost-frame-under-replay",
    "double-unlink",
    "heartbeat-monotonicity",
)


# ---------------------------------------------------------------------- #
# Model 1 — the SPSC byte ring (torn frames, wraparound, heartbeats)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _RingState:
    """One interleaving point of producer, consumer, and supervisor."""

    buf: tuple[int, ...]            # ring cells; 0 = never written
    head: int                       # consumer-published bytes (epoch)
    tail: int                       # producer-published bytes (epoch)
    stream: tuple[int, ...]         # ground truth: byte published at pos i
    epoch_order: tuple[int, ...]    # frame ids in this epoch's send order
    nsent: int                      # frames fully published this epoch
    psent: int                      # bytes of current frame published
    pcopied: int                    # bytes copied but not yet published
    pannounced: int                 # bytes published but not yet copied (bug)
    cacc: int                       # bytes assembled toward current frame
    ndone: int                      # frames fully assembled this epoch
    pending: tuple[tuple[int, int], ...]  # (pos, truth) read-later (bug)
    delivered: frozenset            # frame ids delivered to the engine
    torn: bool                      # a late read observed a wrong byte
    hb: int                         # producer heartbeat counter (epoch)
    hb_seen: int                    # supervisor's last observed heartbeat
    pcrash: int                     # producer crashes injected so far
    ccrash: int                     # consumer crashes injected so far


class RingProtocolModel:
    """Byte-level SPSC ring with chunked frames and crash injection.

    ``frames`` length-``frame_len`` frames stream through a ring of
    ``capacity_frames * frame_len`` bytes (capacity ≥ 2 frames by
    default), one byte per copy step so every chunk boundary is an
    interleaving point.  A crash of either role (≥ 1 injected crash
    point per role) resets the ring — fresh segment, zeroed counters,
    undelivered frames resent in order — exactly the backend's
    fresh-rings-on-restart recovery.

    Bug knobs: ``publish-before-copy`` (tail advances before the cell is
    written), ``overwrite-unread`` (the free-space check allows clobbering
    one unread byte), ``consumer-early-publish`` (head advances before the
    byte is read), ``nonmonotonic-heartbeat`` (``beat`` can decrement).
    """

    def __init__(
        self,
        capacity_frames: int = 2,
        frames: int = 3,
        frame_len: int = 2,
        producer_crashes: int = 1,
        consumer_crashes: int = 1,
        max_beats: int = 2,
        bug: str | None = None,
    ) -> None:
        if capacity_frames < 2:
            raise ValueError("the modeled ring must hold >= 2 frames")
        self.capacity = capacity_frames * frame_len
        self.frames = frames
        self.frame_len = frame_len
        self.producer_crashes = producer_crashes
        self.consumer_crashes = consumer_crashes
        self.max_beats = max_beats
        self.bug = bug
        self.name = "spsc-ring" + (f"[bug={bug}]" if bug else "")

    # byte identity: frame f, offset b -> a nonzero id stable across replay
    def _byte(self, fid: int, b: int) -> int:
        return fid * self.frame_len + b + 1

    def initial_states(self) -> "list[_RingState]":
        return [
            _RingState(
                buf=(0,) * self.capacity,
                head=0, tail=0, stream=(),
                epoch_order=tuple(range(self.frames)),
                nsent=0, psent=0, pcopied=0, pannounced=0,
                cacc=0, ndone=0, pending=(),
                delivered=frozenset(), torn=False,
                hb=0, hb_seen=0, pcrash=0, ccrash=0,
            )
        ]

    def _crash(self, s: _RingState) -> _RingState:
        """Fresh ring + journal replay of every undelivered frame."""
        remaining = tuple(f for f in range(self.frames) if f not in s.delivered)
        return replace(
            s,
            buf=(0,) * self.capacity, head=0, tail=0, stream=(),
            epoch_order=remaining, nsent=0, psent=0, pcopied=0,
            pannounced=0, cacc=0, ndone=0, pending=(),
            hb=0, hb_seen=0,
        )

    def actions(self, s: _RingState) -> Iterator[tuple[str, _RingState]]:
        L, C = self.frame_len, self.capacity
        sending = s.nsent < len(s.epoch_order)
        fid = s.epoch_order[s.nsent] if sending else -1
        free = C - (s.tail - s.head)

        # -- producer ------------------------------------------------- #
        if self.bug == "publish-before-copy":
            # Mutant: tail is published first, the cell is written later.
            if sending and s.psent + s.pannounced < L and free > 0 and s.pannounced < 1:
                truth = self._byte(fid, s.psent + s.pannounced)
                yield "p.announce", replace(
                    s, tail=s.tail + 1, stream=s.stream + (truth,),
                    pannounced=s.pannounced + 1,
                )
            if s.pannounced > 0:
                pos = (s.tail - s.pannounced) % C
                buf = list(s.buf)
                buf[pos] = self._byte(fid, s.psent)
                nxt = replace(
                    s, buf=tuple(buf), psent=s.psent + 1,
                    pannounced=s.pannounced - 1,
                )
                if nxt.psent == L and nxt.pannounced == 0:
                    nxt = replace(nxt, psent=0, nsent=nxt.nsent + 1)
                yield "p.fill", nxt
        else:
            may_copy = free - s.pcopied > 0
            if self.bug == "overwrite-unread":
                # Mutant: off-by-one free check can clobber one unread byte.
                may_copy = free - s.pcopied >= 0
            if sending and s.psent + s.pcopied < L and may_copy:
                pos = (s.tail + s.pcopied) % C
                buf = list(s.buf)
                buf[pos] = self._byte(fid, s.psent + s.pcopied)
                yield "p.copy", replace(s, buf=tuple(buf), pcopied=s.pcopied + 1)
            if s.pcopied > 0:
                ids = tuple(
                    self._byte(fid, s.psent + i) for i in range(s.pcopied)
                )
                nxt = replace(
                    s, tail=s.tail + s.pcopied, stream=s.stream + ids,
                    psent=s.psent + s.pcopied, pcopied=0,
                )
                if nxt.psent == L:
                    nxt = replace(nxt, psent=0, nsent=nxt.nsent + 1)
                yield "p.publish", nxt

        # -- consumer ------------------------------------------------- #
        def _complete(nxt: _RingState) -> _RingState:
            if nxt.cacc == L:
                done_id = nxt.epoch_order[nxt.ndone]
                return replace(
                    nxt, cacc=0, ndone=nxt.ndone + 1,
                    delivered=nxt.delivered | {done_id},
                )
            return nxt

        if self.bug == "consumer-early-publish":
            if s.head < s.tail and len(s.pending) < 1:
                yield "c.publish", replace(
                    s, head=s.head + 1,
                    pending=s.pending + ((s.head, s.stream[s.head]),),
                )
            if s.pending:
                pos, truth = s.pending[0]
                rest = s.pending[1:]
                if s.buf[pos % C] != truth:
                    yield "c.read-late", replace(s, pending=rest, torn=True)
                else:
                    yield "c.read-late", _complete(
                        replace(s, pending=rest, cacc=s.cacc + 1)
                    )
        elif s.head < s.tail:
            val = s.buf[s.head % C]
            if val != s.stream[s.head]:
                yield "c.read", replace(s, head=s.head + 1, torn=True)
            else:
                yield "c.read", _complete(
                    replace(s, head=s.head + 1, cacc=s.cacc + 1)
                )

        # -- heartbeats + supervisor observation ----------------------- #
        if self.bug == "nonmonotonic-heartbeat":
            if s.hb > 0:
                yield "p.beat", replace(s, hb=s.hb - 1)
        if s.hb < self.max_beats:
            yield "p.beat", replace(s, hb=s.hb + 1)
        if s.hb != s.hb_seen:
            yield "s.observe", replace(s, hb_seen=s.hb)

        # -- injected crashes (either role, every interleaving point) -- #
        if s.pcrash < self.producer_crashes:
            yield "crash.producer", replace(self._crash(s), pcrash=s.pcrash + 1)
        if s.ccrash < self.consumer_crashes:
            yield "crash.consumer", replace(self._crash(s), ccrash=s.ccrash + 1)

    def invariants(self):
        def torn(s: _RingState) -> str | None:
            if s.torn:
                return "consumer assembled a byte that differs from what the producer published"
            for i in range(s.head, s.tail):
                if s.buf[i % self.capacity] != s.stream[i]:
                    return (
                        f"published-but-unread position {i} holds "
                        f"{s.buf[i % self.capacity]} instead of {s.stream[i]}"
                    )
            return None

        def heartbeat(s: _RingState) -> str | None:
            if s.hb < s.hb_seen:
                return (
                    f"supervisor saw heartbeat {s.hb_seen}, counter now {s.hb} "
                    "(moved backwards within one incarnation)"
                )
            return None

        def lost(s: _RingState) -> str | None:
            # Delivery completeness at quiescence is covered by the
            # deadlock check; here: a frame must never be *assembled* out
            # of replay order (duplicate assembly is discarded by id).
            if s.ndone > len(s.epoch_order):
                return "consumer assembled more frames than this epoch sent"
            return None

        return [
            ("torn-frame", torn),
            ("heartbeat-monotonicity", heartbeat),
            ("lost-frame-under-replay", lost),
        ]

    def is_terminal(self, s: _RingState) -> bool:
        return (
            len(s.delivered) == self.frames
            and s.nsent == len(s.epoch_order)
            and s.ndone == len(s.epoch_order)
            and s.head == s.tail
            and s.pcopied == 0
            and s.pannounced == 0
            and not s.pending
        )


# ---------------------------------------------------------------------- #
# Model 2 — supervisor dispatch (journal-before-send, replay, discard)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _SupState:
    pending: tuple[int, ...]     # tasks not yet dispatched
    staged: tuple[int, ...]      # between the two dispatch steps
    journal: tuple[int, ...]     # replay journal, in dispatch order
    channel: tuple[int, ...]     # task frames in flight (engine -> worker)
    wtask: int                   # task the worker is processing (-1: idle)
    replies: tuple[int, ...]     # done frames in flight (worker -> engine)
    collected: tuple[int, ...]   # sorted multiset of collected task ids
    discard: frozenset           # replayed ids whose duplicate done to drop
    crashes: int
    done: bool


class SupervisorProtocolModel:
    """Engine dispatch + worker + crash/replay as a transition system.

    The correct discipline journals a task *before* sending it, replays
    the whole journal into a restarted worker, and discards duplicate
    completions by id.  ``bug="send-before-journal"`` swaps the two
    dispatch steps (the mutation the acceptance test seeds);
    ``bug="no-discard"`` drops the duplicate-completion filter.
    """

    def __init__(self, tasks: int = 3, crashes: int = 2, bug: str | None = None) -> None:
        self.tasks = tasks
        self.crashes = crashes
        self.bug = bug
        self.name = "supervisor-replay" + (f"[bug={bug}]" if bug else "")

    def initial_states(self) -> "list[_SupState]":
        return [
            _SupState(
                pending=tuple(range(self.tasks)), staged=(), journal=(),
                channel=(), wtask=-1, replies=(), collected=(),
                discard=frozenset(), crashes=0, done=False,
            )
        ]

    def actions(self, s: _SupState) -> Iterator[tuple[str, _SupState]]:
        if s.done:
            return
        # -- engine: two-step dispatch --------------------------------- #
        if s.pending:
            t = s.pending[0]
            if self.bug == "send-before-journal":
                yield "e.send", replace(
                    s, pending=s.pending[1:], staged=s.staged + (t,),
                    channel=s.channel + (t,),
                )
            else:
                yield "e.journal", replace(
                    s, pending=s.pending[1:], staged=s.staged + (t,),
                    journal=s.journal + (t,),
                )
        if s.staged:
            t = s.staged[0]
            if self.bug == "send-before-journal":
                yield "e.journal", replace(
                    s, staged=s.staged[1:], journal=s.journal + (t,)
                )
            else:
                yield "e.send", replace(
                    s, staged=s.staged[1:], channel=s.channel + (t,)
                )
        # -- engine: collect ------------------------------------------- #
        if s.replies:
            r = s.replies[0]
            if r in s.discard:
                yield "e.discard-dup", replace(
                    s, replies=s.replies[1:], discard=s.discard - {r}
                )
            else:
                yield "e.collect", replace(
                    s, replies=s.replies[1:],
                    collected=tuple(sorted(s.collected + (r,))),
                )
        # -- engine: finish -------------------------------------------- #
        if (
            not s.pending and not s.staged and not s.channel
            and s.wtask < 0 and not s.replies
            and len(s.collected) >= self.tasks
        ):
            yield "e.finish", replace(s, done=True)
        # -- worker ----------------------------------------------------- #
        if s.wtask < 0 and s.channel:
            yield "w.receive", replace(s, wtask=s.channel[0], channel=s.channel[1:])
        if s.wtask >= 0:
            yield "w.reply", replace(s, wtask=-1, replies=s.replies + (s.wtask,))
        # -- crash + incarnation-bounded replay ------------------------- #
        if s.crashes < self.crashes:
            discard = (
                frozenset() if self.bug == "no-discard"
                else frozenset(s.collected) & frozenset(s.journal)
            )
            # Replay owns every journaled entry; a journaled-but-unsent
            # task must not *also* be sent by the interrupted dispatch
            # (in the real engine dispatch completes before supervision
            # runs, so no half-done dispatch survives a restart).
            yield "crash.worker", replace(
                s, channel=s.journal, wtask=-1, replies=(),
                staged=tuple(t for t in s.staged if t not in s.journal),
                discard=discard, crashes=s.crashes + 1,
            )

    def invariants(self):
        everything_needed = tuple(range(self.tasks))

        def lost(s: _SupState) -> str | None:
            for t in everything_needed:
                if (
                    t not in s.collected and t not in s.pending
                    and t not in s.journal and t not in s.channel
                    and t != s.wtask and t not in s.replies
                ):
                    return (
                        f"task {t} is unrecoverable: not collected, not "
                        "journaled, and no frame in flight carries it"
                    )
            for t in set(s.collected):
                if s.collected.count(t) > 1:
                    return f"task {t} collected {s.collected.count(t)} times"
            if s.done and tuple(sorted(set(s.collected))) != everything_needed:
                return "engine finished without collecting every task"
            return None

        return [("lost-frame-under-replay", lost)]

    def is_terminal(self, s: _SupState) -> bool:
        return s.done


# ---------------------------------------------------------------------- #
# Model 3 — segment ownership (create/registry/sweep/fork inheritance)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _SegState:
    seg: str            # "absent" | "live" | "gone"
    reg_engine: bool    # in the engine's created-segment registry
    reg_worker: bool    # in a forked worker's inherited registry copy
    worker: str         # "none" | "live" | "exited"
    engine_exited: bool
    bad_unlink: str     # "" or a description of the ownership violation


class SegmentProtocolModel:
    """Lifecycle of one engine-created segment across fork and exit.

    The discipline: only the creator unlinks; a forked worker *disowns*
    its inherited registry first thing (``forget_inherited_segments``);
    an explicit ``unlink`` forgets the registry entry before the
    syscall so the ``atexit`` sweep cannot unlink the name twice.
    ``bug="no-forget-inherited"`` lets a cleanly exiting worker sweep
    the engine's segments; ``bug="unlink-without-forget"`` leaves the
    registry entry behind an explicit unlink.
    """

    def __init__(self, bug: str | None = None) -> None:
        self.bug = bug
        self.name = "segment-ownership" + (f"[bug={bug}]" if bug else "")

    def initial_states(self) -> "list[_SegState]":
        return [
            _SegState(
                seg="absent", reg_engine=False, reg_worker=False,
                worker="none", engine_exited=False, bad_unlink="",
            )
        ]

    def actions(self, s: _SegState) -> Iterator[tuple[str, _SegState]]:
        if s.engine_exited:
            return
        if s.seg == "absent":
            yield "e.create", replace(s, seg="live", reg_engine=True)
        if s.seg == "live" and s.worker == "none":
            yield "w.fork", replace(s, worker="live", reg_worker=True)
        if s.worker == "live":
            if s.reg_worker and self.bug != "no-forget-inherited":
                yield "w.forget-inherited", replace(s, reg_worker=False)
            # A SIGKILLed worker runs no atexit sweep: always safe.
            yield "w.kill", replace(s, worker="exited", reg_worker=False)
            # A clean exit runs the worker's atexit sweep over whatever
            # its registry still holds.  Under the correct discipline a
            # clean exit implies worker_main ran, whose first statement
            # disowns the inherited registry — so the sweep is a no-op;
            # exiting with the registry intact is exactly the mutation.
            if not s.reg_worker:
                yield "w.exit-clean", replace(s, worker="exited")
            elif self.bug == "no-forget-inherited":
                nxt = replace(s, worker="exited", reg_worker=False)
                if s.seg == "live":
                    nxt = replace(
                        nxt, seg="gone",
                        bad_unlink="a worker's atexit sweep unlinked a "
                                   "segment the engine still owns",
                    )
                elif s.seg == "gone":
                    nxt = replace(
                        nxt, bad_unlink="a worker's atexit sweep re-unlinked "
                                        "an already-unlinked segment",
                    )
                yield "w.exit-clean", nxt
        if s.seg == "live" and s.reg_engine:
            forgot = self.bug != "unlink-without-forget"
            yield "e.unlink", replace(s, seg="gone", reg_engine=not forgot)
        if s.worker != "live":
            # Engine exit runs the engine's atexit sweep.
            nxt = replace(s, engine_exited=True)
            if s.reg_engine:
                if s.seg == "live":
                    nxt = replace(nxt, seg="gone", reg_engine=False)
                elif s.seg == "gone":
                    nxt = replace(
                        nxt, reg_engine=False,
                        bad_unlink="the atexit sweep re-unlinked a segment "
                                   "already unlinked explicitly",
                    )
            yield "e.exit", nxt

    def invariants(self):
        def double_unlink(s: _SegState) -> str | None:
            return s.bad_unlink or None

        def leak(s: _SegState) -> str | None:
            if s.engine_exited and s.seg == "live":
                return "engine exited with a live segment still on the host"
            return None

        return [("double-unlink", double_unlink), ("segment-leak", leak)]

    def is_terminal(self, s: _SegState) -> bool:
        return s.engine_exited and s.worker != "live"


# ---------------------------------------------------------------------- #
# The verifier entry point
# ---------------------------------------------------------------------- #


@dataclass
class ProtocolReport:
    """One model's exhaustive-exploration verdict."""

    name: str
    result: ExploreResult
    families: dict[str, bool]

    @property
    def ok(self) -> bool:
        return self.result.ok and all(self.families.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "model": self.name,
            "states": self.result.states,
            "transitions": self.result.transitions,
            "terminal_states": self.result.terminal_states,
            "elapsed_s": round(self.result.elapsed_s, 3),
            "complete": self.result.complete,
            "families": dict(self.families),
            "violations": [
                {"invariant": v.invariant, "detail": v.detail,
                 "trace": list(v.trace)}
                for v in (*self.result.violations, *self.result.deadlocks)
            ],
        }


def default_models() -> list[object]:
    """The three correct-protocol models ``--protocol`` must prove."""
    return [
        RingProtocolModel(),
        SupervisorProtocolModel(),
        SegmentProtocolModel(),
    ]


def verify_protocol(max_states: int = 500_000) -> list[ProtocolReport]:
    """Exhaustively check every default model; one report per model."""
    reports = []
    for model in default_models():
        result = explore(model, max_states=max_states)
        families = result.invariant_families(model)
        # The bounded-wait family lives in the deadlock detector.
        families["bounded-wait"] = not result.deadlocks
        reports.append(ProtocolReport(model.name, result, families))
    return reports


# ---------------------------------------------------------------------- #
# RPR12x — model/code conformance rules
# ---------------------------------------------------------------------- #


def _functions(sf: SourceFile) -> "dict[str, list[ast.AST]]":
    """Every function definition, grouped by name (fixtures hold twins)."""
    out: "dict[str, list[ast.AST]]" = {}
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, []).append(node)
    return out


def _calls_named(fn: ast.AST, name: str) -> "list[ast.Call]":
    """Calls whose callee name/attr equals ``name``."""
    hits = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == name) or (
                isinstance(func, ast.Attribute) and func.attr == name
            ):
                hits.append(node)
    return hits


def _store_calls(fn: ast.AST, offset_name: str) -> "list[ast.Call]":
    """``self._store(<offset_name>, ...)`` calls inside ``fn``."""
    return [
        call
        for call in _calls_named(fn, "_store")
        if call.args
        and isinstance(call.args[0], ast.Name)
        and call.args[0].id == offset_name
    ]


def _buf_write_lines(fn: ast.AST) -> "list[int]":
    """Lines assigning into ``self._buf[...]`` (the data copy)."""
    lines = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "_buf"
                ):
                    lines.append(node.lineno)
    return lines


def _buf_read_lines(fn: ast.AST) -> "list[int]":
    """Lines loading from ``self._buf[...]`` (the data copy out)."""
    lines = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "_buf"
        ):
            lines.append(node.lineno)
    return lines


@rule("RPR120", "ring-publish-order")
def check_ring_publish_order(sf: SourceFile) -> Iterator[Finding]:
    """Ring counters are published *after* the copy they cover.

    The torn-frame proof in the protocol model assumes the producer
    stores ``tail`` only after the bytes below it are in the buffer, and
    the consumer stores ``head`` only after it has copied the bytes out.
    This rule pins ``put_frame``/``get_frame`` in any ``shm_ring.py`` to
    that order, so the model cannot drift from the code.
    """
    if not sf.parts or sf.parts[-1] != "shm_ring.py":
        return
    fns = _functions(sf)
    for put in fns.get("put_frame", []):
        stores = _store_calls(put, "_TAIL_OFF")
        copies = _buf_write_lines(put)
        if not stores:
            yield sf.finding(
                "RPR120", put,
                "put_frame never publishes _TAIL_OFF; the modeled producer "
                "publishes tail after every chunk copy",
            )
        for store in stores:
            late_copy = [line for line in copies if line > store.lineno]
            if late_copy:
                yield sf.finding(
                    "RPR120", store,
                    "put_frame publishes _TAIL_OFF before the data copy on "
                    f"line {min(late_copy)}; the model proves no-torn-frame "
                    "only for copy-then-publish order",
                )
    for get in fns.get("get_frame", []):
        stores = _store_calls(get, "_HEAD_OFF")
        reads = _buf_read_lines(get)
        if not stores:
            yield sf.finding(
                "RPR120", get,
                "get_frame never publishes _HEAD_OFF; the modeled consumer "
                "publishes head after every chunk copy-out",
            )
        for store in stores:
            late_read = [line for line in reads if line > store.lineno]
            if late_read:
                yield sf.finding(
                    "RPR120", store,
                    "get_frame publishes _HEAD_OFF before copying the bytes "
                    f"out on line {min(late_read)}; the producer may reuse "
                    "them mid-read (torn frame)",
                )


@rule("RPR121", "journal-before-send")
def check_journal_before_send(sf: SourceFile) -> Iterator[Finding]:
    """Dispatch journals (or enqueues) every task before the ring send.

    The lost-frame-under-replay proof assumes a crash between any two
    statements still finds the in-flight task in the journal (indexer
    slots) or the outstanding deque (parser slots).  Any ``mp_backend.py``
    function that both records work and sends it must record first.
    """
    if not sf.parts or sf.parts[-1] != "mp_backend.py":
        return

    def _record_lines(fn: ast.AST, containers: tuple[str, ...]) -> "list[int]":
        return [
            node.lineno
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in containers
        ]

    fns = _functions(sf)
    for name in sorted(fns):
        for fn in fns[name]:
            sends = [c.lineno for c in _calls_named(fn, "_put")]
            records = _record_lines(fn, ("journal", "outstanding"))
            if records and sends and min(sends) < min(records):
                yield sf.finding(
                    "RPR121", fn,
                    f"'{name}' sends on the ring (line {min(sends)}) before "
                    f"recording the task (line {min(records)}); a crash in "
                    "between loses the frame — journal-write must "
                    "happen-before ring-send",
                )
    for required, container in (("_dispatch", "journal"), ("_top_up", "outstanding")):
        for fn in fns.get(required, []):
            if not _record_lines(fn, (container,)):
                yield sf.finding(
                    "RPR121", fn,
                    f"'{required}' no longer appends to '{container}'; the "
                    "replay model assumes every dispatched task is recorded",
                )


@rule("RPR122", "heartbeat-discipline")
def check_heartbeat_discipline(sf: SourceFile) -> Iterator[Finding]:
    """Heartbeat counters are written only by ``beat`` as ``load + 1``.

    The heartbeat-monotonicity proof assumes each side's counter has a
    single writer performing a monotonic increment; a second write site
    (or a non-increment store) would let the supervisor observe the
    counter move backwards within one incarnation.
    """
    if not sf.parts or sf.parts[-1] != "shm_ring.py":
        return
    fns = _functions(sf)
    for name in sorted(fns):
        if name == "beat":
            continue
        for fn in fns[name]:
            for off in ("_PROD_HB_OFF", "_CONS_HB_OFF"):
                for store in _store_calls(fn, off):
                    yield sf.finding(
                        "RPR122", store,
                        f"'{name}' writes the heartbeat word {off}; only "
                        "beat() may write a heartbeat (single-writer "
                        "monotonicity)",
                    )
    for beat in fns.get("beat", []):
        stores = _calls_named(beat, "_store")
        if not stores:
            yield sf.finding(
                "RPR122", beat,
                "beat() no longer stores a heartbeat; the supervisor's "
                "liveness detection depends on it",
            )
        for store in stores:
            value = store.args[1] if len(store.args) >= 2 else None
            if not (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Add)
                and any(
                    isinstance(side, ast.Call)
                    and isinstance(side.func, ast.Attribute)
                    and side.func.attr == "_load"
                    for side in (value.left, value.right)
                )
            ):
                yield sf.finding(
                    "RPR122", store,
                    "beat() stores something other than '_load(off) + <n>'; "
                    "the heartbeat must be a monotonic read-modify-write",
                )


@rule("RPR123", "segment-hygiene")
def check_segment_hygiene(sf: SourceFile) -> Iterator[Finding]:
    """Attach untracks; unlink forgets the registry entry first.

    The double-unlink proof assumes (1) an attaching process removes the
    segment from its resource tracker (or a dying worker unlinks the
    engine's live segment), and (2) an explicit ``unlink`` removes the
    created-segment registry entry *before* the syscall, so the atexit
    sweep cannot unlink the same name again.
    """
    if not sf.parts or sf.parts[-1] != "shm_ring.py":
        return
    fns = _functions(sf)
    for attach in fns.get("attach", []):
        untracks = _calls_named(attach, "_untrack")
        opens = _calls_named(attach, "SharedMemory")
        if not untracks:
            yield sf.finding(
                "RPR123", attach,
                "attach() never calls _untrack; the worker's resource "
                "tracker would unlink the engine's live segment at worker "
                "exit",
            )
        elif opens and min(u.lineno for u in untracks) < min(
            o.lineno for o in opens
        ):
            yield sf.finding(
                "RPR123", untracks[0],
                "attach() untracks before the SharedMemory attach; the "
                "tracker entry is created by the attach itself",
            )
    for unlink in fns.get("unlink", []):
        syscalls = [
            node
            for node in ast.walk(unlink)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "_shm"
        ]
        forgets = _calls_named(unlink, "_forget_created")
        if syscalls and not forgets:
            yield sf.finding(
                "RPR123", syscalls[0],
                "unlink() never calls _forget_created; the atexit sweep "
                "will unlink the same segment a second time",
            )
        elif syscalls and forgets and min(
            f.lineno for f in forgets
        ) > min(c.lineno for c in syscalls):
            yield sf.finding(
                "RPR123", forgets[0],
                "unlink() forgets the registry entry after the syscall; a "
                "sweep racing the window unlinks the name twice",
            )
    for create in fns.get("create", []):
        if not _calls_named(create, "_register_created"):
            yield sf.finding(
                "RPR123", create,
                "create() never calls _register_created; an aborted build "
                "would leak the segment (no sweep entry)",
            )
