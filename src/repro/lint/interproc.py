"""Interprocedural layer: cross-module fork-safety and shm ownership.

PR 2's race analyzer (:mod:`repro.lint.races`) reasons about one module
at a time, which is enough for thread locksets but not for the process
boundary: the thing ``Process(target=...)`` captures is routinely
defined in *another* module (``worker_main`` lives in ``mp_worker``, the
spec class it receives too).  This module builds a small cross-module
project model — one summary per file in the lint run, linked through
``from X import Y`` edges — and uses it for two rules:

- **RPR111 (fork-safety dataflow).**  A value that exists only in the
  parent process must not ride across ``Process(target=..., args=...)``:
  locks and other threading primitives (possibly held at fork), open
  file handles (shared offsets, double-close), live :class:`ShmRing`
  objects (the child must *attach*, not inherit — inherited rings dodge
  the registry/tracker hygiene), and tracer/registry singletons (their
  buffers would be forked mid-write).  The rule taints ``args`` values,
  closure captures of nested/lambda targets, bound-``self`` targets
  whose class stores a tainted attribute, and — via the project model —
  arguments smuggled inside a constructor call whose class is defined in
  another module.  Plain-data specs (strings, ints, ``.spec()``
  descriptors) pass.
- **RPR112 (shm resource ownership).**  Every ``ShmRing.create`` must
  be dominated by a release: the bound name (or ``self`` attribute)
  sees a ``.close()``/``.unlink()`` somewhere in the module, or the
  module calls ``sweep_created_segments`` (the registry sweep releases
  anything ``create`` registered).  A create whose result is dropped on
  the floor is always a leak.

Both rules are registered with ``scope="project"``: their verdict on a
file can change when a *different* file changes, so the incremental
cache ties their findings to the whole tree's hash, not the file's.

Stdlib-only, never imports the engine — like everything under
``repro.lint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.framework import (
    Finding,
    SourceFile,
    register_project_builder,
    rule,
)

__all__ = ["ProjectModel", "current_project"]

_THREADING_PRIMITIVES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
}
_SINGLETON_CTORS = {"Tracer", "MetricsRegistry", "FaultInjector"}
_RELEASE_METHODS = ("close", "unlink")
_TAINT_DEPTH = 4


# ---------------------------------------------------------------------- #
# Project model
# ---------------------------------------------------------------------- #


@dataclass
class ModuleSummary:
    """What the cross-module analyses need to know about one file."""

    sf: SourceFile
    dotted: str
    #: local alias -> (module spelled in the import, original name)
    imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    top_functions: dict[str, ast.AST] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: module-level ``name = <expr>`` assignments
    global_assigns: dict[str, ast.expr] = field(default_factory=dict)


def _dotted_name(sf: SourceFile) -> str:
    parts = list(sf.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _summarize(sf: SourceFile) -> ModuleSummary:
    summary = ModuleSummary(sf=sf, dotted=_dotted_name(sf))
    for node in sf.tree.body:
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                summary.imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.top_functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.global_assigns[target.id] = node.value
    return summary


class ProjectModel:
    """Every module of one lint run, linked by import edges."""

    def __init__(self, sources: list[SourceFile]) -> None:
        self.modules: list[ModuleSummary] = [_summarize(sf) for sf in sources]
        self.by_path: dict[str, ModuleSummary] = {
            m.sf.path: m for m in self.modules
        }
        self._by_dotted: dict[str, ModuleSummary] = {
            m.dotted: m for m in self.modules
        }

    def _find_module(self, spelled: str) -> ModuleSummary | None:
        if spelled in self._by_dotted:
            return self._by_dotted[spelled]
        for mod in self.modules:
            if mod.dotted.endswith("." + spelled) or spelled.endswith(
                "." + mod.dotted
            ):
                return mod
        return None

    def resolve_import(
        self, summary: ModuleSummary, name: str
    ) -> tuple[ModuleSummary, str] | None:
        """Follow one ``from X import name`` hop within the run."""
        origin = summary.imports.get(name)
        if origin is None:
            return None
        module = self._find_module(origin[0])
        if module is None:
            return None
        return module, origin[1]


_current_project: ProjectModel | None = None


def _build_project(sources: list[SourceFile]) -> None:
    global _current_project
    _current_project = ProjectModel(sources)


register_project_builder(_build_project)


def current_project() -> ProjectModel | None:
    """The model built for the lint run in progress (tests use this)."""
    return _current_project


# ---------------------------------------------------------------------- #
# Taint analysis
# ---------------------------------------------------------------------- #


def _callee_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _direct_taint(call: ast.Call) -> str | None:
    """Taint carried by this call expression itself (not its arguments)."""
    name = _callee_name(call)
    if name in _THREADING_PRIMITIVES:
        return f"a threading.{name} primitive"
    if name == "open" and isinstance(call.func, ast.Name):
        return "an open file handle"
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ("create", "attach")
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "ShmRing"
    ):
        return "a live ShmRing"
    if name in _SINGLETON_CTORS:
        return f"a process-local {name} singleton"
    return None


def _local_assigns(fn: ast.AST) -> dict[str, ast.expr]:
    """Simple ``name = <expr>`` bindings in ``fn``'s own body."""
    assigns: dict[str, ast.expr] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
    return assigns


class _TaintContext:
    """Name resolution for one taint query."""

    def __init__(
        self,
        project: ProjectModel,
        summary: ModuleSummary,
        scope_assigns: dict[str, ast.expr],
        class_node: ast.ClassDef | None,
    ) -> None:
        self.project = project
        self.summary = summary
        self.scope_assigns = scope_assigns
        self.class_node = class_node

    def self_attr_taint(self, attr: str) -> str | None:
        """Taint of ``self.<attr>`` per the enclosing class's assignments."""
        if self.class_node is None:
            return None
        for method in self.class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            assigns = _local_assigns(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        taint = _expr_taint(node.value, self, assigns)
                        if taint:
                            return taint
        return None


def _expr_taint(
    expr: ast.expr | None,
    ctx: _TaintContext,
    scope_assigns: dict[str, ast.expr] | None = None,
    depth: int = 0,
) -> str | None:
    """Why ``expr`` must not cross the process boundary, or ``None``."""
    if expr is None or depth > _TAINT_DEPTH:
        return None
    assigns = scope_assigns if scope_assigns is not None else ctx.scope_assigns
    if isinstance(expr, ast.Call):
        direct = _direct_taint(expr)
        if direct:
            return direct
        # A constructor call smuggling a tainted value inside: resolve the
        # class locally or through an import edge, then taint its args.
        for sub in list(expr.args) + [kw.value for kw in expr.keywords]:
            taint = _expr_taint(sub, ctx, assigns, depth + 1)
            if taint:
                name = _callee_name(expr) or "a constructor"
                return f"a {name}(...) carrying {taint}"
        return None
    if isinstance(expr, ast.Name):
        bound = assigns.get(expr.id)
        if bound is None:
            bound = ctx.summary.global_assigns.get(expr.id)
        if bound is not None and bound is not expr:
            return _expr_taint(bound, ctx, assigns, depth + 1)
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return ctx.self_attr_taint(expr.attr)
    if isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            taint = _expr_taint(elt, ctx, assigns, depth + 1)
            if taint:
                return taint
        return None
    if isinstance(expr, ast.IfExp):
        return _expr_taint(expr.body, ctx, assigns, depth + 1) or _expr_taint(
            expr.orelse, ctx, assigns, depth + 1
        )
    return None


# ---------------------------------------------------------------------- #
# RPR111 — fork-safety dataflow
# ---------------------------------------------------------------------- #


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _enclosing(
    node: ast.AST, parents: dict[ast.AST, ast.AST], kinds: tuple
) -> ast.AST | None:
    cursor = parents.get(node)
    while cursor is not None:
        if isinstance(cursor, kinds):
            return cursor
        cursor = parents.get(cursor)
    return None


def _free_loads(fn: ast.AST) -> set[str]:
    """Names ``fn`` loads but neither binds nor receives as parameters."""
    if isinstance(fn, ast.Lambda):
        params = {a.arg for a in fn.args.args}
        bound: set[str] = set()
        loads = {
            n.id
            for n in ast.walk(fn.body)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
    else:
        args = fn.args  # type: ignore[attr-defined]
        params = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        }
        bound = {
            n.id
            for stmt in fn.body  # type: ignore[attr-defined]
            for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }
        loads = {
            n.id
            for stmt in fn.body  # type: ignore[attr-defined]
            for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
    return loads - params - bound


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


@rule("RPR111", "fork-unsafe-capture", scope="project")
def check_fork_safety(sf: SourceFile) -> Iterator[Finding]:
    """Parent-process-only values must not cross ``Process(target=...)``.

    Locks, open file handles, live ``ShmRing`` objects, and
    tracer/registry singletons are meaningful only in the process that
    made them; capturing one in a worker's closure, passing it through
    ``args=``, or reaching it through a bound-method target forks state
    the child cannot safely use.  Spawn targets must be module-level
    functions fed plain data (the ``WorkerSpec`` pattern).
    """
    project = current_project()
    if project is None or sf.path not in project.by_path:
        return
    summary = project.by_path[sf.path]
    parents = _parent_map(sf.tree)

    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        if _callee_name(node) != "Process":
            continue
        target = _kwarg(node, "target")
        if target is None:
            continue  # not the multiprocessing signature (e.g. sim.Process)
        encl_fn = _enclosing(
            node, parents, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        encl_class = _enclosing(node, parents, (ast.ClassDef,))
        scope_assigns = _local_assigns(encl_fn) if encl_fn is not None else {}
        ctx = _TaintContext(project, summary, scope_assigns, encl_class)

        # 1. The target itself: closures, lambdas, bound methods.
        if isinstance(target, ast.Lambda):
            for name in sorted(_free_loads(target)):
                taint = _expr_taint(ast.Name(id=name, ctx=ast.Load()), ctx)
                if taint:
                    yield sf.finding(
                        "RPR111", node,
                        f"Process target lambda captures '{name}' ({taint}) "
                        "from the parent process; spawn a module-level "
                        "function with plain-data args instead",
                    )
        elif isinstance(target, ast.Name):
            nested = None
            if encl_fn is not None:
                for sub in ast.walk(encl_fn):
                    if (
                        isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and sub.name == target.id
                        and sub is not encl_fn
                    ):
                        nested = sub
                        break
            if nested is not None:
                for name in sorted(_free_loads(nested)):
                    taint = _expr_taint(ast.Name(id=name, ctx=ast.Load()), ctx)
                    if taint:
                        yield sf.finding(
                            "RPR111", node,
                            f"Process target '{target.id}' closes over "
                            f"'{name}' ({taint}) from the parent process; "
                            "workers must start from a module-level function "
                            "with plain-data args",
                        )
            # Module-level functions — local or resolved through an import
            # edge — are safe targets by construction; nothing to do.
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            taint_attr = None
            if isinstance(encl_class, ast.ClassDef):
                for method in encl_class.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    for sub in ast.walk(method):
                        if (
                            isinstance(sub, ast.Assign)
                            and any(
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                for t in sub.targets
                            )
                        ):
                            for t in sub.targets:
                                if not (
                                    isinstance(t, ast.Attribute)
                                    and isinstance(t.value, ast.Name)
                                    and t.value.id == "self"
                                ):
                                    continue
                                taint = ctx.self_attr_taint(t.attr)
                                if taint:
                                    taint_attr = (t.attr, taint)
                                    break
                        if taint_attr:
                            break
                    if taint_attr:
                        break
            if taint_attr is not None:
                yield sf.finding(
                    "RPR111", node,
                    f"Process target is the bound method "
                    f"'self.{target.attr}' of a class holding "
                    f"'self.{taint_attr[0]}' ({taint_attr[1]}); the whole "
                    "instance is pickled/forked into the child — spawn a "
                    "module-level function with plain-data args",
                )

        # 2. Everything passed through args=(...).
        args_val = _kwarg(node, "args")
        if isinstance(args_val, (ast.Tuple, ast.List)):
            for elt in args_val.elts:
                taint = _expr_taint(elt, ctx)
                if taint:
                    label = ast.unparse(elt)
                    yield sf.finding(
                        "RPR111", node,
                        f"Process args pass {label!r} ({taint}) across the "
                        "process boundary; ship plain data and re-create "
                        "the resource in the child",
                    )


# ---------------------------------------------------------------------- #
# RPR112 — shm resource ownership
# ---------------------------------------------------------------------- #


@rule("RPR112", "unreleased-shm-ring", scope="project")
def check_shm_ownership(sf: SourceFile) -> Iterator[Finding]:
    """Every ``ShmRing.create`` needs a release path or the sweep.

    A created segment outlives the process unless someone unlinks it.
    The create itself registers the segment with the created-segment
    registry, so a module that calls ``sweep_created_segments`` is
    covered; otherwise the binding (name or ``self`` attribute) must see
    a ``.close()`` or ``.unlink()`` somewhere in the module.  A create
    whose result is discarded can never be released by name and is
    always flagged (the sweep aside).
    """
    creates: list[tuple[ast.Call, str | None]] = []
    parents = _parent_map(sf.tree)
    sweeps = False
    released: set[str] = set()
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        if _callee_name(node) == "sweep_created_segments":
            sweeps = True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "create"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "ShmRing"
        ):
            binding: str | None = None
            parent = parents.get(node)
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Name):
                    binding = target.id
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    binding = target.attr
            creates.append((node, binding))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
        ):
            owner = node.func.value
            if isinstance(owner, ast.Name):
                released.add(owner.id)
            elif isinstance(owner, ast.Attribute):
                released.add(owner.attr)
    if sweeps:
        return
    for call, binding in creates:
        if binding is None:
            yield sf.finding(
                "RPR112", call,
                "ShmRing.create result is discarded; the segment can never "
                "be released by name — bind it and close/unlink it, or "
                "sweep via sweep_created_segments()",
            )
        elif binding not in released:
            yield sf.finding(
                "RPR112", call,
                f"ShmRing.create bound to '{binding}' is never closed or "
                "unlinked in this module, and the module never runs "
                "sweep_created_segments(); the segment leaks past process "
                "exit",
            )
