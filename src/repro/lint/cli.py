"""``repro lint`` — command-line driver for the static-analysis pack.

Also runnable directly as ``python -m repro.lint.cli``; the ``repro``
CLI's ``lint`` subcommand forwards here.  Exit codes: 0 clean, 1 findings
(or parse errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Importing rules/races registers every rule with the framework.
from repro.lint import races, rules  # noqa: F401
from repro.lint.framework import (
    format_json,
    format_text,
    lint_paths,
    registered_rules,
)
from repro.lint.typing_gate import run_mypy

__all__ = ["main", "add_lint_arguments", "run"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro`` CLI subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is what CI archives)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="PATH",
        help="race allowlist file (default: the package's race_allowlist.txt)",
    )
    parser.add_argument(
        "--mypy", choices=["auto", "on", "off"], default="auto",
        help="auto: run mypy when installed; on: require it; off: skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for code, reg in sorted(registered_rules().items()):
            print(f"{code}  {reg.name:24s} {reg.description.splitlines()[0]}")
        return 0

    races.set_allowlist_path(args.allowlist)
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    try:
        lint_run = lint_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    mypy_state = "skipped"
    if args.mypy != "off" and select is None:
        mypy_findings, available = run_mypy(args.paths)
        if available:
            lint_run.findings.extend(mypy_findings)
            lint_run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
            mypy_state = "ran"
        elif args.mypy == "on":
            print(
                "error: --mypy=on but mypy is not installed "
                "(pip install -e '.[dev]')",
                file=sys.stderr,
            )
            return 2
        else:
            mypy_state = "unavailable"

    if args.format == "json":
        print(format_json(lint_run, extra={"mypy": mypy_state}))
    else:
        print(format_text(lint_run))
        if mypy_state != "ran":
            print(f"mypy: {mypy_state}")
    return 1 if (lint_run.findings or lint_run.parse_errors) else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` and run the linter; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="paper-invariant lint pack, race analyzer, typing gate",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
