"""``repro lint`` — command-line driver for the static-analysis pack.

Also runnable directly as ``python -m repro.lint.cli``; the ``repro``
CLI's ``lint`` subcommand forwards here.  Exit codes: 0 clean, 1 findings
(or parse errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Importing rules/races/interproc/protocol registers every rule.
from repro.lint import interproc, protocol, races, rules  # noqa: F401
from repro.lint.framework import (
    LintCache,
    format_json,
    format_text,
    lint_paths,
    registered_rules,
)
from repro.lint.typing_gate import run_mypy

__all__ = ["main", "add_lint_arguments", "run"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro`` CLI subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is what CI archives)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="PATH",
        help="race allowlist file (default: the package's race_allowlist.txt)",
    )
    parser.add_argument(
        "--mypy", choices=["auto", "on", "off"], default="auto",
        help="auto: run mypy when installed; on: require it; off: skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--protocol", action="store_true",
        help="also model-check the shm ring / supervisor / segment protocols",
    )
    parser.add_argument(
        "--max-states", type=int, default=500_000, metavar="N",
        help="state budget per protocol model (with --protocol)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental cache (.repro-lint-cache/)",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for code, reg in sorted(registered_rules().items()):
            print(f"{code}  {reg.name:24s} {reg.description.splitlines()[0]}")
        return 0

    races.set_allowlist_path(args.allowlist)
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    cache = None if args.no_cache else LintCache()
    try:
        lint_run = lint_paths(args.paths, select=select, cache=cache)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    # Allowlist self-validation (RPR103): an entry whose file was analyzed
    # but that no RPR101 hit consumed is stale and must be pruned.  Like
    # the mypy gate, this is a CLI-layer pass — it only makes sense over a
    # full run, so --select skips it.
    if select is None:
        used = set(lint_run.facts.get(races.USED_ALLOWLIST_FACT, []))
        stale = races.stale_allowlist_findings(lint_run.files, used)
        if stale:
            lint_run.findings.extend(stale)
            lint_run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    protocol_reports = None
    if args.protocol:
        protocol_reports = protocol.verify_protocol(max_states=args.max_states)

    mypy_state = "skipped"
    if args.mypy != "off" and select is None:
        mypy_findings, available = run_mypy(args.paths)
        if available:
            lint_run.findings.extend(mypy_findings)
            lint_run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
            mypy_state = "ran"
        elif args.mypy == "on":
            print(
                "error: --mypy=on but mypy is not installed "
                "(pip install -e '.[dev]')",
                file=sys.stderr,
            )
            return 2
        else:
            mypy_state = "unavailable"

    if args.format == "json":
        extra: dict[str, object] = {
            "mypy": mypy_state,
            "cache_hits": lint_run.cache_hits,
            "cache_misses": lint_run.cache_misses,
        }
        if protocol_reports is not None:
            extra["protocol"] = [r.to_dict() for r in protocol_reports]
        print(format_json(lint_run, extra=extra))
    else:
        print(format_text(lint_run))
        if mypy_state != "ran":
            print(f"mypy: {mypy_state}")
        if protocol_reports is not None:
            for report in protocol_reports:
                res = report.result
                families = ", ".join(
                    f"{name}={'ok' if held else 'VIOLATED'}"
                    for name, held in sorted(report.families.items())
                )
                status = "ok" if report.ok else "FAILED"
                budget = "" if res.complete else " (state budget exhausted)"
                print(
                    f"protocol: {report.name}: {status}{budget} — "
                    f"{res.states} states, {res.transitions} transitions "
                    f"in {res.elapsed_s:.2f}s; {families}"
                )
                for violation in res.violations:
                    print(violation.render())

    protocol_failed = protocol_reports is not None and any(
        not r.ok for r in protocol_reports
    )
    return 1 if (
        lint_run.findings or lint_run.parse_errors or protocol_failed
    ) else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` and run the linter; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="paper-invariant lint pack, race analyzer, typing gate",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
