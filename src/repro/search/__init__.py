"""Query processing over the engine's inverted files.

The paper's output format is designed for retrieval — dictionary lookup →
postings pointer → partial lists per run (§III.F) — and this package puts
a small but complete query layer on top:

- :class:`~repro.search.query.SearchEngine` — Boolean conjunction /
  disjunction / negation, TF-IDF ranking, and docID-range-restricted
  variants that exploit the run-per-file layout;
- phrase queries over *positional* indexes (built with
  ``PlatformConfig(positional=True)``), the extension the paper's §IV.D
  comparison with Ivory's positional postings motivates.

Query terms go through exactly the indexing pipeline's normalization
(lower-case → Porter stem → stop-word filter), so a query matches what the
index stores.
"""

from repro.search.query import QueryResult, SearchEngine, normalize_query

__all__ = ["SearchEngine", "QueryResult", "normalize_query"]
