"""Boolean, ranked, and phrase retrieval over an index directory."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.parsing.porter import PorterStemmer
from repro.parsing.stopwords import StopWordFilter
from repro.postings.reader import PostingsReader

__all__ = ["SearchEngine", "QueryResult", "normalize_query"]

_stemmer = PorterStemmer()
_stop = StopWordFilter()


def normalize_query(query: str, keep_stop_words: bool = False) -> list[str]:
    """Apply the indexing pipeline's normalization to a query string.

    Lower-case, split on non-alphanumerics, Porter-stem, drop stop words
    (phrase queries keep them: positions in the index already skipped
    them, so phrase matching must too — see
    :meth:`SearchEngine.phrase`).
    """
    import re

    terms = []
    for token in re.findall(r"[^\W_]+", query.lower(), re.UNICODE):
        term = _stemmer.stem(token)
        if not term:
            continue
        if not keep_stop_words and _stop.is_stop(term):
            continue
        terms.append(term)
    return terms


@dataclass(frozen=True)
class QueryResult:
    """One ranked hit."""

    doc_id: int
    score: float


class SearchEngine:
    """Query layer over a :class:`~repro.postings.reader.PostingsReader`.

    Parameters
    ----------
    index_dir:
        Directory produced by :meth:`repro.core.engine.IndexingEngine.build`.
    num_docs:
        Collection size for IDF; defaults to ``max docID + 1`` inferred
        from the docID-range map.
    """

    def __init__(self, index_dir: str, num_docs: int | None = None) -> None:
        self.reader = PostingsReader(index_dir)
        if num_docs is None:
            highs = [r.max_doc for r in self.reader.range_map.runs if r.max_doc is not None]
            num_docs = (max(highs) + 1) if highs else 0
        self.num_docs = num_docs

    # ------------------------------------------------------------------ #
    # Boolean retrieval
    # ------------------------------------------------------------------ #

    def _doc_sets(self, terms: list[str]) -> list[set[int]]:
        return [set(d for d, _ in self.reader.postings(t)) for t in terms]

    @staticmethod
    def _gallop_intersect(short: list[int], long: list[int]) -> list[int]:
        """Intersect two sorted docID lists with galloping search.

        For each element of the shorter list the probe position in the
        longer one advances by doubling steps then binary search — the
        classic sub-linear conjunctive-query walk, O(s·log(l/s)) instead
        of O(s+l), which matters when one term is rare and the other is a
        near-stop word.
        """
        import bisect

        out: list[int] = []
        lo = 0
        n = len(long)
        for doc in short:
            # Gallop: exponentially grow the window starting at lo.
            step = 1
            hi = lo
            while hi < n and long[hi] < doc:
                lo = hi
                hi += step
                step <<= 1
            pos = bisect.bisect_left(long, doc, lo, min(hi + 1, n))
            if pos < n and long[pos] == doc:
                out.append(doc)
                lo = pos + 1
            else:
                lo = pos
            if lo >= n:
                break
        return out

    def boolean_and(self, query: str) -> list[int]:
        """Documents containing *all* query terms.

        Postings are docID-sorted, so the conjunction intersects lists
        rarest-first with galloping search — results are identical to a
        set intersection, with sub-linear probing on skewed lists.
        """
        terms = normalize_query(query)
        if not terms:
            return []
        lists = [[d for d, _ in self.reader.postings(t)] for t in terms]
        if not all(lists):
            return []
        lists.sort(key=len)  # rarest first: the driver list stays small
        result = lists[0]
        for other in lists[1:]:
            result = self._gallop_intersect(result, other)
            if not result:
                break
        return result

    def boolean_or(self, query: str) -> list[int]:
        """Documents containing *any* query term."""
        terms = normalize_query(query)
        if not terms:
            return []
        return sorted(set.union(*self._doc_sets(terms)))

    def boolean_not(self, query: str, exclude: str) -> list[int]:
        """AND of ``query`` minus documents matching any ``exclude`` term."""
        base = set(self.boolean_and(query))
        if not base:
            return []
        for term in normalize_query(exclude):
            base -= set(d for d, _ in self.reader.postings(term))
        return sorted(base)

    # ------------------------------------------------------------------ #
    # Ranked retrieval
    # ------------------------------------------------------------------ #

    def ranked(self, query: str, k: int = 10) -> list[QueryResult]:
        """Top-k by TF-IDF with sublinear tf scaling."""
        scores: dict[int, float] = {}
        for term in normalize_query(query):
            postings = self.reader.postings(term)
            if not postings or self.num_docs <= 0:
                continue
            df = len(postings)
            idf = math.log((self.num_docs + 1) / (df + 0.5))
            if idf <= 0:
                continue
            for doc, tf in postings:
                scores[doc] = scores.get(doc, 0.0) + (1.0 + math.log(tf)) * idf
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [QueryResult(doc, score) for doc, score in ranked]

    def ranked_bm25(
        self,
        query: str,
        k: int = 10,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> list[QueryResult]:
        """Top-k by Okapi BM25.

        Document lengths come from summing tf over the vocabulary once
        (cached); absent a stored length table this is exact for the
        emitted-token stream the index actually contains.
        """
        lengths = self._doc_lengths()
        if not lengths:
            return []
        avg_len = sum(lengths.values()) / len(lengths)
        scores: dict[int, float] = {}
        for term in normalize_query(query):
            postings = self.reader.postings(term)
            if not postings:
                continue
            df = len(postings)
            idf = math.log(1.0 + (self.num_docs - df + 0.5) / (df + 0.5))
            for doc, tf in postings:
                dl = lengths.get(doc, avg_len)
                denom = tf + k1 * (1.0 - b + b * dl / avg_len)
                scores[doc] = scores.get(doc, 0.0) + idf * tf * (k1 + 1.0) / denom
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [QueryResult(doc, score) for doc, score in ranked]

    def _doc_lengths(self) -> dict[int, int]:
        """Emitted-token counts per document (computed once, cached)."""
        cached = getattr(self, "_doc_lengths_cache", None)
        if cached is not None:
            return cached
        lengths: dict[int, int] = {}
        for term in self.reader.vocabulary():
            for doc, tf in self.reader.postings(term):
                lengths[doc] = lengths.get(doc, 0) + tf
        self._doc_lengths_cache = lengths
        return lengths

    def ranked_in_range(
        self, query: str, lo_doc: int, hi_doc: int, k: int = 10
    ) -> list[QueryResult]:
        """Ranked retrieval restricted to ``[lo_doc, hi_doc]``.

        Only run files overlapping the range are fetched — the §III.F
        "faster search when narrowed down to a range of document IDs".
        """
        scores: dict[int, float] = {}
        for term in normalize_query(query):
            postings = self.reader.postings_in_range(term, lo_doc, hi_doc)
            if not postings or self.num_docs <= 0:
                continue
            idf = math.log((self.num_docs + 1) / (len(postings) + 0.5))
            for doc, tf in postings:
                scores[doc] = scores.get(doc, 0.0) + (1.0 + math.log(tf)) * max(idf, 0.1)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [QueryResult(doc, score) for doc, score in ranked]

    # ------------------------------------------------------------------ #
    # Phrase retrieval (positional indexes)
    # ------------------------------------------------------------------ #

    def phrase(self, query: str) -> list[int]:
        """Documents containing the query terms as a contiguous phrase.

        Requires a positional index (``PlatformConfig(positional=True)``).
        Positions are ordinals over the *emitted* token stream — stop
        words were removed before position assignment — so a query phrase
        is matched by its content terms at consecutive emitted positions,
        which also makes "indexing on platforms" match "indexing
        platforms" modulo stop words (the classic stop-worded phrase
        semantics).
        """
        if not self.reader.is_positional:
            raise ValueError(
                "phrase queries need a positional index; build with "
                "PlatformConfig(positional=True)"
            )
        terms = normalize_query(query)
        if not terms:
            return []
        if len(terms) == 1:
            return sorted(d for d, _ in self.reader.postings(terms[0]))

        # doc → positions per term, intersected document-at-a-time.
        per_term = [
            {doc: set(pos) for doc, _, pos in self.reader.positional_postings(t)}
            for t in terms
        ]
        candidates = set(per_term[0])
        for postings in per_term[1:]:
            candidates &= set(postings)
        hits = []
        for doc in candidates:
            first_positions = per_term[0][doc]
            for start in first_positions:
                if all(
                    (start + offset) in per_term[offset][doc]
                    for offset in range(1, len(terms))
                ):
                    hits.append(doc)
                    break
        return sorted(hits)

    def phrase_frequency(self, query: str) -> dict[int, int]:
        """Per-document count of phrase occurrences."""
        if not self.reader.is_positional:
            raise ValueError("phrase queries need a positional index")
        terms = normalize_query(query)
        if not terms:
            return {}
        per_term = [
            {doc: set(pos) for doc, _, pos in self.reader.positional_postings(t)}
            for t in terms
        ]
        candidates = set(per_term[0])
        for postings in per_term[1:]:
            candidates &= set(postings)
        out: dict[int, int] = {}
        for doc in candidates:
            count = sum(
                1
                for start in per_term[0][doc]
                if all(
                    (start + offset) in per_term[offset][doc]
                    for offset in range(1, len(terms))
                )
            )
            if count:
                out[doc] = count
        return out
